"""Executor-level fusion of shield/select/project chains.

The columnar tier's core: a maximal linear chain of sp-aware filters
and projections (``Select``, ``SecurityShield``, ``Project``,
``AccessFilter``) is detected **once per plan** and executed as a
single pass over a :class:`~repro.stream.columnar.ColumnBatch` — one
row-major→columnar conversion at the head, compiled predicate masks
instead of per-tuple ``Condition`` dispatch, cached attribute columns
shared across stages, and one conversion back at the tail.

Fusion is strictly an *executor* concern: the plan DAG is untouched,
every operator keeps its node, stats, flush hook and audit identity, so
static plan analysis (``repro.analysis``, SEC001–SEC005) sees exactly
the same logical chain with or without the columnar tier.  Each fused
stage updates its operator's counters (``tuples_in/out``, ``sps_out``,
``comparisons``, drop counts, security metric series) with the same
totals the element-wise and segment-batched paths produce — the
differential oracle's equivalence contract.

Fusion preconditions (checked in :func:`build_fused_chains`):

* every operator in the chain is one of the four fusable types;
* no operator has an audit log attached (fused stages do not replay
  per-tuple audit interleavings; the executor's audit-unbatching rules
  already force element-wise delivery in that case);
* interior nodes have exactly one upstream edge and sit on port 0 of a
  single downstream consumer — fan-in/fan-out breaks the chain;
* a chain needs at least two nodes (a lone operator's native batch
  path is already one tight loop).

Elements that are not tuple runs — security punctuations, unwrapped
singleton tuples — flow through the chain via each operator's ordinary
``process()`` path, so segment state machines behave identically.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.engine.plan import PhysicalPlan, PlanNode
from repro.operators.accessfilter import AccessFilter
from repro.operators.base import Operator
from repro.operators.compiler import CompiledPredicate, compile_condition
from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.shield import SecurityShield
from repro.stream.batch import TupleBatch
from repro.stream.columnar import ColumnBatch
from repro.stream.element import StreamElement

__all__ = ["FUSABLE_OPERATORS", "MIN_FUSED_ROWS", "FusedChain",
           "build_fused_chains"]

#: Operator types a fused chain may contain.
FUSABLE_OPERATORS = (Select, SecurityShield, Project, AccessFilter)

#: Minimum tuple-run length for the columnar tier to engage.  Shorter
#: runs take the ordinary segment-batched path: the row→column
#: conversion and kernel setup cost more than they save below this
#: size, and both paths are counter- and delivery-equivalent, so the
#: cutover is purely a performance choice.
MIN_FUSED_ROWS = 32


def _account(op: Operator, start: float, n: int, tuples_out: int,
             sps_out: int) -> None:
    """Replicate ``Operator.process_batch``'s wrapper accounting.

    Counter *totals* (tuples in/out, sps out) are exact; timing values
    (processing_time, EWMA, latency observations) measure the fused
    stage instead of a standalone batch call — the equivalence contract
    exempts timing, which is inherently mode-dependent.
    """
    elapsed = perf_counter() - start
    stats = op.stats
    stats.processing_time += elapsed
    if n:
        stats.ewma_seconds += stats.alpha * (elapsed / n
                                             - stats.ewma_seconds)
        if op._m_latency is not None:
            op._m_latency.observe(elapsed / n)
    stats.tuples_in += n
    stats.tuples_out += tuples_out
    stats.sps_out += sps_out


class _Stage:
    """One fused operator: a columnar kernel plus its live operator."""

    __slots__ = ("op",)

    op: Any  # concrete operator; stages poke at its internals

    def __init__(self, op: Operator):
        self.op = op

    def run(self, cb: ColumnBatch, out: "list[object]") -> None:
        raise NotImplementedError


class _SelectStage(_Stage):
    """σ over a column batch via the compiled predicate."""

    __slots__ = ("predicate",)

    def __init__(self, op: Select):
        super().__init__(op)
        self.predicate: CompiledPredicate = compile_condition(op.condition)

    def run(self, cb: ColumnBatch, out: "list[object]") -> None:
        op = self.op
        start = perf_counter()
        tuples = cb.tuples
        n = len(tuples)
        op._after_tuple = True
        op.stats.comparisons += n
        mask = self.predicate.mask(cb)
        # Survivors built directly from the mask — one fused
        # count+compress pass instead of two.
        kept = [item for item, flag in zip(tuples, mask) if flag]
        k = len(kept)
        op.tuples_dropped += n - k
        sps_out = 0
        if k:
            if op._held_sps:
                sps_out = len(op._held_sps)
                out.extend(op._held_sps)
                op._held_sps = []
            if k == n:
                out.append(cb)
            elif k == 1:
                # Singleton survivors leave the columnar tier (the
                # batch paths' unwrap convention).
                out.append(kept[0])
            else:
                out.append(ColumnBatch(kept))
        _account(op, start, n, k, sps_out)


class _ShieldStage(_Stage):
    """ψ over a column batch: one segment decision, vectorized apply."""

    __slots__ = ()

    def run(self, cb: ColumnBatch, out: "list[object]") -> None:
        op = self.op
        start = perf_counter()
        tuples = cb.tuples
        n = len(tuples)
        if op._m_seg is not None:
            op._segment_tuples += n
        if op._decision_stale:
            op._refresh_decision(tuples[0])
        decision = op._segment_decision
        sps_out = 0
        tracer = op._tracer
        if decision is None:
            # Non-uniform policy: per-row verdicts, memoized per
            # distinct role set (see SecurityShield._permits_cached —
            # comparison accounting is replayed exactly).
            policy_for = op.tracker.policy_for
            permits = op._permits_cached
            if tracer is None:
                kept = [item for item in tuples
                        if permits(policy_for(item))]
            else:
                # Provenance: per-row records (drops always kept,
                # passes only while the trace is sampled).
                traced = tracer.active
                kept = []
                for item in tuples:
                    if permits(policy_for(item)):
                        if traced:
                            op._prov_tuple(item, True)
                        kept.append(item)
                    else:
                        op._prov_tuple(item, False)
            k = len(kept)
            blocked = n - k
            if blocked:
                op.tuples_blocked += blocked
                if op._m_drop is not None:
                    op._m_drop.inc(blocked)
                    if op._segment_denial:
                        op._m_denial.inc(blocked)
            if k:
                if op._m_pass is not None:
                    op._m_pass.inc(k)
                if op._held_sps:
                    sps_out = len(op._held_sps)
                    out.extend(op._held_sps)
                    op._held_sps = []
                if k == n:
                    out.append(cb)
                elif k == 1:
                    out.append(kept[0])
                else:
                    out.append(ColumnBatch(kept))
            _account(op, start, n, k, sps_out)
            return
        if not decision:
            op.tuples_blocked += n
            if op._m_drop is not None:
                op._m_drop.inc(n)
                if op._segment_denial:
                    op._m_denial.inc(n)
            if tracer is not None:
                op._prov_run(tuples, False)
            _account(op, start, n, 0, 0)
            return
        if op._m_pass is not None:
            op._m_pass.inc(n)
        if tracer is not None and tracer.active:
            op._prov_run(tuples, True)
        if op._held_sps:
            sps_out = len(op._held_sps)
            out.extend(op._held_sps)
            op._held_sps = []
        out.append(cb)
        _account(op, start, n, n, sps_out)


class _ProjectStage(_Stage):
    """π over a column batch in one pass, reusing cached columns."""

    __slots__ = ("attributes",)

    def __init__(self, op: Project):
        super().__init__(op)
        self.attributes: tuple[str, ...] = op.attributes

    def run(self, cb: ColumnBatch, out: "list[object]") -> None:
        op = self.op
        start = perf_counter()
        n = len(cb.tuples)
        marker = op._close_batch()
        if marker:
            out.extend(marker)
        out.append(cb.project(self.attributes))
        _account(op, start, n, n, len(marker))


class _AccessFilterStage(_Stage):
    """Pre-/post-filter over a column batch with memoized verdicts."""

    __slots__ = ("_memo",)

    def __init__(self, op: AccessFilter):
        super().__init__(op)
        # Pure verdict memo keyed by role set: unlike the shield there
        # is no per-verdict comparison accounting to replay (the filter
        # counts one comparison per tuple at batch level), and the
        # predicate never rebinds at runtime.
        self._memo: dict[object, bool] = {}

    def run(self, cb: ColumnBatch, out: "list[object]") -> None:
        op = self.op
        start = perf_counter()
        tuples = cb.tuples
        n = len(tuples)
        op.stats.comparisons += n
        predicate = op.predicate
        policy_for = op.tracker.policy_for
        memo = self._memo
        tracer = op._tracer
        traced = tracer is not None and tracer.active
        kept: list[object] = []
        append = kept.append
        for item in tuples:
            policy = policy_for(item)
            verdict = memo.get(policy.roles)
            if verdict is None:
                verdict = bool(policy.permits_any(predicate))
                memo[policy.roles] = verdict
            if verdict:
                if traced:
                    op._prov_item(item, policy, True)
                append(item)
            elif tracer is not None:
                op._prov_item(item, policy, False)
        k = len(kept)
        op.tuples_blocked += n - k
        sps_out = 0
        if k:
            if op._held_sps:
                sps_out = len(op._held_sps)
                out.extend(op._held_sps)
                op._held_sps = []
            if k == n:
                out.append(cb)
            elif k == 1:
                out.append(kept[0])
            else:
                out.append(ColumnBatch(kept))  # type: ignore[arg-type]
        _account(op, start, n, k, sps_out)


def _make_stage(op: Operator) -> _Stage:
    if isinstance(op, Select):
        return _SelectStage(op)
    if isinstance(op, SecurityShield):
        return _ShieldStage(op)
    if isinstance(op, Project):
        return _ProjectStage(op)
    if isinstance(op, AccessFilter):
        return _AccessFilterStage(op)
    raise TypeError(f"operator {op!r} is not fusable")


class FusedChain:
    """A compiled linear chain executed as one columnar pass."""

    __slots__ = ("head", "tail", "stages", "operators")

    def __init__(self, nodes: "list[PlanNode]"):
        self.head = nodes[0]
        self.tail = nodes[-1]
        self.operators: tuple[Operator, ...] = tuple(
            node.operator for node in nodes)
        self.stages: tuple[_Stage, ...] = tuple(
            _make_stage(node.operator) for node in nodes)

    def __len__(self) -> int:
        return len(self.stages)

    def run(self, batch: TupleBatch) -> "list[StreamElement]":
        """Push one tuple run through every stage; return the tail's
        output elements (column batches converted back to row-major).

        Per stage, the current frontier's elements are processed in
        order: column batches through the stage's columnar kernel, bare
        elements (sps, unwrapped singletons) through the operator's
        ordinary element path.  For a linear chain of deterministic
        unary operators this per-stage sweep yields exactly the
        depth-first delivery order of the unfused executor.
        """
        if len(batch.tuples) < MIN_FUSED_ROWS:
            # Sub-threshold run: the row→column conversion costs more
            # than the kernels save, so delegate to each operator's
            # native segment-batched path instead of materializing a
            # ColumnBatch.  Read from the module at call time so
            # harnesses that lower the threshold around a run (the
            # differential oracle pins it to 1) keep the kernels
            # engaged.
            plain: list[object] = [batch]
            for stage in self.stages:
                op = stage.op
                nxt_plain: list[object] = []
                for element in plain:
                    if type(element) is TupleBatch:
                        nxt_plain.extend(op.process_batch(element, 0))
                    else:
                        nxt_plain.extend(op.process(element, 0))
                if not nxt_plain:
                    return []
                plain = nxt_plain
            return plain  # type: ignore[return-value]
        frontier: list[object] = [ColumnBatch.from_batch(batch)]
        for stage in self.stages:
            nxt: list[object] = []
            process = stage.op.process
            for element in frontier:
                if type(element) is ColumnBatch:
                    stage.run(element, nxt)
                else:
                    nxt.extend(process(element, 0))
            if not nxt:
                return []
            frontier = nxt
        out: "list[StreamElement]" = []
        for element in frontier:
            if type(element) is ColumnBatch:
                out.append(element.to_batch())
            else:
                out.append(element)  # type: ignore[arg-type]
        return out

    def __repr__(self) -> str:
        names = " → ".join(op.name for op in self.operators)
        return f"FusedChain({names})"


def build_fused_chains(plan: PhysicalPlan) -> dict[int, FusedChain]:
    """Detect maximal fusable chains; map head ``node_id`` → chain.

    Runs once per executor construction.  The plan DAG itself is never
    modified — fusion only short-circuits batch *delivery* between the
    chain's members.
    """
    indegree: dict[int, int] = {node.node_id: 0 for node in plan.nodes}
    for node in plan.nodes:
        for child, _ in node.downstream:
            indegree[child.node_id] += 1
    for targets in plan.entries.values():
        for entry_node, _ in targets:
            indegree[entry_node.node_id] += 1

    def fusable(node: PlanNode) -> bool:
        op = node.operator
        return (isinstance(op, FUSABLE_OPERATORS)
                and op.audit is None)

    chains: dict[int, FusedChain] = {}
    consumed: set[int] = set()
    for node in plan.topological():
        if node.node_id in consumed or not fusable(node):
            continue
        members = [node]
        cur = node
        while len(cur.downstream) == 1:
            child, port = cur.downstream[0]
            if (port != 0 or child.node_id in consumed
                    or indegree[child.node_id] != 1
                    or not fusable(child)):
                break
            members.append(child)
            cur = child
        if len(members) >= 2:
            chains[members[0].node_id] = FusedChain(members)
            consumed.update(member.node_id for member in members)
    return chains
