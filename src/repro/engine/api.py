"""Public execution-API types shared by the DSMS entry points.

Historically :meth:`DSMS.run`, :meth:`DSMS.build_plan` and
:meth:`DSMS.open_session` took a stringly-typed
``optimize: bool | str`` (``False`` / ``True`` / ``"workload"``).
:class:`OptimizeLevel` replaces that with a proper enum; the legacy
values are still accepted everywhere but raise a
:class:`DeprecationWarning` on the way in.
"""

from __future__ import annotations

import enum
import warnings

from repro.errors import QueryError

__all__ = ["OptimizeLevel"]


class OptimizeLevel(enum.Enum):
    """How much plan optimization an execution entry point applies."""

    #: Compile queries exactly as registered.
    NONE = "none"
    #: Optimize each query in isolation (Section VI.B rules + costs).
    PER_QUERY = "per_query"
    #: Section VI.C multi-query optimization: per-query plans chosen
    #: to minimize workload cost with shared subplans counted once.
    WORKLOAD = "workload"

    @classmethod
    def coerce(cls, value: "OptimizeLevel | bool | str | None"
               ) -> "OptimizeLevel":
        """Normalize an ``optimize=`` argument to an enum member.

        ``None`` and enum members pass through; the legacy ``False`` /
        ``True`` / ``"workload"`` spellings are translated with a
        :class:`DeprecationWarning`.
        """
        if value is None:
            return cls.NONE
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            level = cls.PER_QUERY if value else cls.NONE
        elif isinstance(value, str):
            try:
                level = cls(value.lower())
            except ValueError:
                raise QueryError(
                    f"unknown optimize level: {value!r} (expected one "
                    f"of {[m.value for m in cls]})") from None
        else:
            raise QueryError(
                f"optimize must be an OptimizeLevel, got {value!r}")
        warnings.warn(
            f"optimize={value!r} is deprecated; use "
            f"OptimizeLevel.{level.name}",
            DeprecationWarning, stacklevel=3)
        return level
