"""Physical query plans.

A physical plan is a DAG of operator nodes fed by named stream sources.
Plans are built either directly (``add`` / ``connect``) or compiled
from logical expressions (:meth:`PhysicalPlan.compile_expr`).  The
compiler hash-conses on structural expression equality, so queries
sharing a subexpression share the corresponding operator nodes — the
shared subplans of Figure 5 — and each shared stateful operator keeps a
single copy of its state.
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.expressions import (DupElimExpr, GroupByExpr,
                                       IntersectExpr, JoinExpr, LogicalExpr,
                                       ProjectExpr, ScanExpr, SelectExpr,
                                       ShieldExpr, UnionExpr)
from repro.core.bitmap import RoleUniverse
from repro.errors import PlanError
from repro.operators.base import Operator
from repro.operators.dupelim import DuplicateElimination
from repro.operators.groupby import GroupBy
from repro.operators.index_join import IndexSAJoin
from repro.operators.join import NestedLoopSAJoin
from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.setops import Intersect, Union
from repro.operators.shield import SecurityShield

__all__ = ["PlanNode", "PhysicalPlan"]


class PlanNode:
    """One operator in the DAG plus its downstream edges."""

    __slots__ = ("operator", "downstream", "node_id")

    def __init__(self, operator: Operator, node_id: int):
        self.operator = operator
        self.node_id = node_id
        #: (child node, child input port) pairs.
        self.downstream: list[tuple["PlanNode", int]] = []

    def __repr__(self) -> str:
        return f"PlanNode#{self.node_id}({self.operator.name})"


class PhysicalPlan:
    """An executable operator DAG."""

    def __init__(self, universe: RoleUniverse | None = None):
        self.universe = universe if universe is not None else RoleUniverse()
        self.nodes: list[PlanNode] = []
        #: stream id -> [(entry node, port)]
        self.entries: dict[str, list[tuple[PlanNode, int]]] = {}
        self._expr_cache: dict[LogicalExpr, PlanNode] = {}

    # -- construction ------------------------------------------------------
    def add(self, operator: Operator) -> PlanNode:
        node = PlanNode(operator, len(self.nodes))
        self.nodes.append(node)
        return node

    def connect(self, parent: PlanNode, child: PlanNode,
                port: int = 0) -> None:
        if not 0 <= port < child.operator.arity:
            raise PlanError(
                f"{child.operator.name} has no port {port}"
            )
        parent.downstream.append((child, port))

    def connect_source(self, stream_id: str, node: PlanNode,
                       port: int = 0) -> None:
        if not 0 <= port < node.operator.arity:
            raise PlanError(f"{node.operator.name} has no port {port}")
        self.entries.setdefault(stream_id, []).append((node, port))

    # -- compilation from logical expressions ------------------------------------
    def compile_expr(self, expr: LogicalExpr, sink: Operator) -> PlanNode:
        """Compile ``expr``, attach ``sink`` to its output, return sink node.

        Structurally equal subexpressions compile to shared nodes.
        """
        return self.compile_chain(expr, [sink])[-1]

    def compile_chain(self, expr: LogicalExpr,
                      operators: list[Operator]) -> list[PlanNode]:
        """Compile ``expr`` and attach a chain of unary operators.

        Used e.g. to place a fixed delivery-side filter between a
        query's plan and its sink.  Returns the chain's nodes in order.
        """
        if not operators:
            raise PlanError("compile_chain requires at least one operator")
        nodes = [self.add(op) for op in operators]
        outlet = self._compile(expr)
        self._attach(outlet, nodes[0], 0)
        for parent, child in zip(nodes, nodes[1:]):
            self.connect(parent, child)
        return nodes

    def _attach(self, outlet: "str | PlanNode", node: PlanNode,
                port: int) -> None:
        if isinstance(outlet, str):
            self.connect_source(outlet, node, port)
        else:
            self.connect(outlet, node, port)

    def _compile(self, expr: LogicalExpr) -> "str | PlanNode":
        """Returns either a stream id (scan) or the producing node."""
        if isinstance(expr, ScanExpr):
            return expr.stream_id
        cached = self._expr_cache.get(expr)
        if cached is not None:
            return cached
        node = self._build_node(expr)
        self._expr_cache[expr] = node
        return node

    def _build_node(self, expr: LogicalExpr) -> PlanNode:
        children = [self._compile(child) for child in expr.children()]
        operator = self._make_operator(expr, children)
        node = self.add(operator)
        for port, outlet in enumerate(children):
            self._attach(outlet, node, port)
        return node

    def _make_operator(self, expr: LogicalExpr,
                       children: list) -> Operator:
        def sid(outlet, default: str) -> str:
            return outlet if isinstance(outlet, str) else default

        if isinstance(expr, ShieldExpr):
            for role in sorted(expr.roles):
                self.universe.register(role)
            conjuncts = [frozenset(p) for p in expr.predicates]
            from repro.core.bitmap import RoleSet
            return SecurityShield(
                RoleSet(expr.roles), sid(children[0], "*"),
                conjuncts=[RoleSet(c) for c in conjuncts],
            )
        if isinstance(expr, SelectExpr):
            return Select(expr.condition)
        if isinstance(expr, ProjectExpr):
            return Project(expr.attributes)
        if isinstance(expr, JoinExpr):
            left_sid = sid(children[0], "left")
            right_sid = sid(children[1], "right")
            if expr.variant == "nl":
                return NestedLoopSAJoin(
                    expr.left_on, expr.right_on, expr.window,
                    method=expr.method, left_sid=left_sid,
                    right_sid=right_sid,
                )
            return IndexSAJoin(
                expr.left_on, expr.right_on, expr.window,
                universe=self.universe, left_sid=left_sid,
                right_sid=right_sid,
            )
        if isinstance(expr, DupElimExpr):
            return DuplicateElimination(
                expr.window, expr.attributes,
                stream_id=sid(children[0], "*"),
            )
        if isinstance(expr, GroupByExpr):
            return GroupBy(expr.key, expr.agg, expr.attribute,
                           window=expr.window,
                           stream_id=sid(children[0], "*"))
        if isinstance(expr, UnionExpr):
            return Union(left_sid=sid(children[0], "left"),
                         right_sid=sid(children[1], "right"))
        if isinstance(expr, IntersectExpr):
            return Intersect(expr.attributes, expr.window,
                             left_sid=sid(children[0], "left"),
                             right_sid=sid(children[1], "right"))
        raise PlanError(f"cannot compile {type(expr).__name__}")

    # -- introspection ----------------------------------------------------------
    def compiled_node(self, expr: LogicalExpr) -> PlanNode | None:
        """The plan node a compiled logical expression produced.

        Public accessor for callers (the DSMS facade, the audit layer)
        that need to map query expressions back to live operators;
        ``None`` for expressions not compiled into this plan (scans
        compile to stream entries, not nodes).
        """
        return self._expr_cache.get(expr)

    def topological(self) -> list[PlanNode]:
        """Nodes ordered so parents precede children."""
        indegree: dict[int, int] = {node.node_id: 0 for node in self.nodes}
        for node in self.nodes:
            for child, _ in node.downstream:
                indegree[child.node_id] += 1
        order: list[PlanNode] = []
        ready = [node for node in self.nodes
                 if indegree[node.node_id] == 0]
        while ready:
            node = ready.pop()
            order.append(node)
            for child, _ in node.downstream:
                indegree[child.node_id] -= 1
                if indegree[child.node_id] == 0:
                    ready.append(child)
        if len(order) != len(self.nodes):
            raise PlanError("plan contains a cycle")
        return order

    def operators(self) -> Iterator[Operator]:
        for node in self.nodes:
            yield node.operator

    def find_operators(self, op_type: type) -> list[Operator]:
        return [op for op in self.operators() if isinstance(op, op_type)]

    def __repr__(self) -> str:
        return (f"PhysicalPlan(nodes={len(self.nodes)}, "
                f"entries={sorted(self.entries)})")
