"""Sharded multi-process execution: segments fan out, results merge.

:func:`run_sharded` executes a DSMS workload across a pool of worker
processes.  The pipeline:

1. **Optimize first** — the coordinator runs the configured optimizer
   level over every registered query, so workers execute exactly the
   plans a single-process run would.
2. **Split queries** — a fully stateless plan ({scan, shield, select,
   project}) runs entirely inside the workers, including its
   ``delivery:<name>`` shield and sink.  A plan with stateful
   operators (joins, group-by, dup-elim, set ops) is split: each
   maximal stateless subtree becomes a *prefix unit* executed in the
   workers, and the coordinator runs the rewritten stateful suffix
   over the merged unit outputs.  Structurally equal subtrees share
   one unit (the shared-subplan property of the single-process plan).
3. **Partition** — every input stream is cut into s-punctuated
   segment chunks (:mod:`repro.engine.partition`) and hash-routed to
   the workers; each worker runs its own SP Analyzer, shield state
   and metrics over its sub-streams.
4. **Merge** — worker outputs come back as anchor-tagged chunk runs
   and are reassembled into exact single-stream order; stateful
   suffixes then run in-process over the merged virtual streams.

Denial-by-default is preserved by construction: a tuple can only be
delivered by a worker's delivery shield or the coordinator suffix's
delivery shield, never raw.  The lifecycle is fail-closed: a worker
that dies or hangs aborts the whole run — every other worker is
terminated, a ``health.alert`` span is emitted through the DSMS's
observability, and :class:`ShardExecutionError` is raised instead of
returning partial (potentially under-enforced) results.

Per-shard audit events and trace spans are shipped back over the
result pipe and re-recorded through the coordinator's Observability
hub with a ``shard`` label, so the audit trail and flight recorder
stay single-system views.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.algebra.expressions import (LogicalExpr, ProjectExpr, ScanExpr,
                                       SelectExpr, ShieldExpr, walk)
from repro.core.analyzer import SPAnalyzer
from repro.core.bitmap import RoleSet, RoleUniverse
from repro.core.punctuation import SecurityPunctuation
from repro.engine import fusion as _fusion
from repro.engine.api import OptimizeLevel
from repro.engine.executor import ExecutionReport, Executor
from repro.engine.partition import chunk_runs, merge_chunk_runs, \
    partition_spans, partition_stream, slice_spans
from repro.engine.plan import PhysicalPlan
from repro.errors import QueryError, ShardExecutionError
from repro.observability import AuditLog, Observability, Tracer
from repro.observability.audit import AuditEvent
from repro.observability.stats import StageStats
from repro.observability.trace import (NullTraceSink, RingBufferTraceSink,
                                       SpanEvent)
from repro.operators.shield import SecurityShield
from repro.operators.sink import CollectingSink
from repro.stream.batch import coalesce_elements
from repro.stream.element import StreamElement
from repro.stream.schema import StreamSchema
from repro.stream.source import CallbackSource, ListSource, StreamSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.dsms import DSMS, QueryResult

__all__ = [
    "STATELESS_EXPRS",
    "ShardExecutionError",
    "ShardResult",
    "ShardTask",
    "execute_shard_task",
    "run_sharded",
    "split_workload",
]

#: Expression types whose operators keep no cross-segment state beyond
#: the (segment-local) policy tracker — safe to run shard-local.
STATELESS_EXPRS = (ScanExpr, ShieldExpr, SelectExpr, ProjectExpr)

#: Default per-run worker deadline.  Generous: this is a liveness
#: backstop against a hung worker, not a performance budget.
DEFAULT_TIMEOUT = 120.0

#: Worker trace buffer: large enough to hold a full verification run's
#: flat spans, still bounded against pathological emitters.
_WORKER_TRACE_CAPACITY = 65536


# -- workload splitting -------------------------------------------------------

def _is_stateless(expr: LogicalExpr) -> bool:
    if not isinstance(expr, STATELESS_EXPRS):
        return False
    if isinstance(expr, SelectExpr) and not _shard_safe_select(expr):
        return False
    return all(_is_stateless(child) for child in expr.children())


def _shard_safe_select(expr: SelectExpr) -> bool:
    """Static shard-safety proof for a selection's UDFs.

    A select may run inside forked shard workers only when every
    ``FuncCondition`` leaf is *proven* pure and deterministic: a
    stateful closure accumulates per-worker state (results then depend
    on the partitioning), and process-specific values (``id``,
    ``hash``) diverge across workers.  UNKNOWN fails closed — the
    subtree is pinned to the coordinator suffix, which preserves
    single-process semantics exactly (refuse-or-pin; this is the pin).
    """
    from repro.analysis.udf import shard_safe

    return shard_safe(expr.condition)


def _source_sid(expr: LogicalExpr) -> str:
    """The one scan a stateless (all-unary) subtree reads."""
    node = expr
    while not isinstance(node, ScanExpr):
        node = node.children()[0]
    return node.stream_id


class _UnitRegistry:
    """Interns stateless prefix subtrees as shared virtual streams."""

    def __init__(self) -> None:
        self._by_expr: "dict[LogicalExpr, str]" = {}
        #: (virtual sid, expr, source sid) in discovery order.
        self.ordered: "list[tuple[str, LogicalExpr, str]]" = []

    def intern(self, expr: LogicalExpr) -> str:
        sid = self._by_expr.get(expr)
        if sid is None:
            source = _source_sid(expr)
            # Virtual sids sort by (source stream, discovery index):
            # the suffix merges its sources in sorted-sid order, and
            # this naming keeps equal-timestamp ties across virtual
            # streams in the same order the single-process merge
            # resolves them for the underlying streams.
            sid = f"__part.{source}.{len(self.ordered):04d}"
            self._by_expr[expr] = sid
            self.ordered.append((sid, expr, source))
        return sid


def _rewrite_suffix(expr: LogicalExpr,
                    registry: _UnitRegistry) -> LogicalExpr:
    """Replace maximal stateless subtrees with virtual scans."""
    if _is_stateless(expr):
        return ScanExpr(registry.intern(expr))
    children = tuple(_rewrite_suffix(child, registry)
                     for child in expr.children())
    return expr.with_children(*children)


def split_workload(exprs: "dict[str, LogicalExpr]",
                   roles: "dict[str, frozenset[str]]"):
    """Split optimized query plans into worker and coordinator parts.

    Returns ``(local_queries, split_queries, registry)`` where
    ``local_queries`` is ``[(name, expr, roles)]`` run wholly in the
    workers, ``split_queries`` maps names to rewritten suffix
    expressions run by the coordinator, and ``registry`` holds the
    interned prefix units in discovery order.
    """
    registry = _UnitRegistry()
    local_queries: "list[tuple[str, LogicalExpr, frozenset[str]]]" = []
    split_queries: "dict[str, LogicalExpr]" = {}
    for name, expr in exprs.items():
        if _is_stateless(expr):
            local_queries.append((name, expr, roles[name]))
        else:
            split_queries[name] = _rewrite_suffix(expr, registry)
    return local_queries, split_queries, registry


# -- worker-side execution ----------------------------------------------------

@dataclass
class ShardTask:
    """Everything one worker needs to run its partition."""

    shard_idx: int
    n_shards: int
    #: sid -> schema attributes (original streams only).
    schemas: "dict[str, tuple[str, ...]]"
    #: sid -> this shard's element sub-stream — or, when ``spans`` is
    #: set, the *full* stream shared across tasks (fork start method:
    #: inherited copy-on-write, never pickled).
    streams: "dict[str, list[StreamElement]]"
    #: sid -> run the SP Analyzer over this stream.
    analyze: "dict[str, bool]"
    #: (virtual sid, stateless prefix expr) pairs, discovery order.
    units: "list[tuple[str, LogicalExpr]]"
    #: (name, expr, roles) for queries run wholly in the worker.
    local_queries: "list[tuple[str, LogicalExpr, frozenset[str]]]"
    server_sps: "tuple[SecurityPunctuation, ...]" = ()
    batching: bool = True
    columnar: bool = True
    min_fused_rows: int = _fusion.MIN_FUSED_ROWS
    audit: bool = False
    tracing: bool = False
    #: Fault injection for the verification harness: ``"crash"`` kills
    #: the worker before it reports, ``"hang"`` blocks it forever.
    fault: str | None = None
    #: sid -> this shard's ``(start, stop)`` spans into ``streams``.
    #: When set the worker does its own scatter (in parallel) instead
    #: of the coordinator building per-shard lists serially.
    spans: "dict[str, list[tuple[int, int]]] | None" = None
    #: The coordinator's GC setting before its scatter phase.  Forked
    #: workers inherit the temporarily-disabled GC and must restore
    #: the real setting so shard execution matches a local run.
    gc_enabled: bool = True


@dataclass
class ShardResult:
    """One worker's outputs, shipped back over the result pipe."""

    shard_idx: int
    #: virtual sid -> anchor-tagged output chunk runs.
    units: "dict[str, list[tuple[float, list[StreamElement]]]]"
    #: local query name -> anchor-tagged output chunk runs.
    local: "dict[str, list[tuple[float, list[StreamElement]]]]"
    elements_in: int = 0
    tuples_in: int = 0
    sps_in: int = 0
    #: Process-CPU seconds spent in the worker (analysis + execution
    #: + output chunking) — the per-shard cost on the critical path.
    cpu_seconds: float = 0.0
    stages: "list[StageStats]" = field(default_factory=list)
    audit_events: "list[AuditEvent]" = field(default_factory=list)
    spans: "list[SpanEvent]" = field(default_factory=list)


@dataclass
class ShardFailure:
    """A worker's structured error report (fail-closed diagnostics)."""

    shard_idx: int
    message: str


def execute_shard_task(task: ShardTask) -> ShardResult:
    """Run one shard's partition to completion (in-process).

    Mirrors the single-process run: a fresh SP Analyzer (with the
    server policies applied), a hash-consed physical plan over the
    shard's units and local queries, the segment-batched/columnar
    executor tiers, and — for local queries — the same
    ``delivery:<name>`` shield the DSMS facade installs.
    """
    cpu_start = time.process_time()
    _fusion.MIN_FUSED_ROWS = task.min_fused_rows
    universe = RoleUniverse()
    analyzer = SPAnalyzer(universe)
    for sp in task.server_sps:
        analyzer.add_server_policy(sp)
    observability = (Observability(audit=AuditLog())
                     if task.audit else Observability.disabled())
    trace_sink = (RingBufferTraceSink(_WORKER_TRACE_CAPACITY)
                  if task.tracing else NullTraceSink())

    plan = PhysicalPlan(universe)
    unit_sinks: "dict[str, CollectingSink]" = {}
    for unit_sid, expr in task.units:
        sink = CollectingSink(name=f"sink:{unit_sid}")
        plan.compile_chain(expr, [sink])
        unit_sinks[unit_sid] = sink
    local_sinks: "dict[str, CollectingSink]" = {}
    for name, expr, roles in task.local_queries:
        sink = CollectingSink(name=f"sink:{name}")
        delivery = SecurityShield(RoleSet(roles),
                                  name=f"delivery:{name}")
        plan.compile_chain(expr, [delivery, sink])
        local_sinks[name] = sink
        observability.bind(delivery, query=name)
        for sub in walk(expr):
            if not isinstance(sub, ShieldExpr):
                continue
            compiled = plan.compiled_node(sub)
            if compiled is not None and isinstance(
                    compiled.operator, SecurityShield):
                observability.bind(compiled.operator, query=name)
    if observability.audit is not None:
        for operator in plan.operators():
            if operator.audit is None:
                observability.bind(operator)

    sources: "list[StreamSource]" = []
    prebatched = False
    sids = sorted(task.streams)
    single = task.batching and len(sids) == 1
    for sid in sids:
        schema = StreamSchema(sid, tuple(task.schemas[sid]))
        elements = task.streams[sid]
        if task.spans is not None:
            elements = slice_spans(elements, task.spans[sid])
        base = ListSource(schema, elements)
        if task.analyze.get(sid, False):
            if single:
                factory = (lambda b=base:
                           analyzer.analyze_batched(iter(b)))
                prebatched = True
            else:
                factory = lambda b=base: analyzer.analyze(iter(b))
            sources.append(CallbackSource(schema, factory))
        elif single:
            sources.append(CallbackSource(
                schema, (lambda b=base: coalesce_elements(iter(b)))))
            prebatched = True
        else:
            sources.append(base)

    executor = Executor(plan, sources, tracer=trace_sink,
                        batching=task.batching,
                        columnar=task.columnar,
                        prebatched=prebatched)
    report = executor.run()

    result = ShardResult(
        shard_idx=task.shard_idx,
        units={unit_sid: chunk_runs(unit_sid, list(sink.elements))
               for unit_sid, sink in unit_sinks.items()},
        local={name: chunk_runs(name, list(sink.elements))
               for name, sink in local_sinks.items()},
        elements_in=report.elements_in,
        tuples_in=report.tuples_in,
        sps_in=report.sps_in,
        stages=list(report.stages),
    )
    if observability.audit is not None:
        result.audit_events = list(observability.audit)
    if task.tracing and isinstance(trace_sink, RingBufferTraceSink):
        result.spans = trace_sink.events()
    result.cpu_seconds = time.process_time() - cpu_start
    return result


def _shard_worker_main(task: ShardTask, conn) -> None:
    """Worker process entry: run the task, ship exactly one message.

    Fail-closed discipline: on any error the worker reports a
    :class:`ShardFailure` (or simply dies, which the coordinator's
    recv/poll loop detects as EOF) — it never sends partial results.
    """
    if task.gc_enabled and not gc.isenabled():
        gc.enable()  # forked mid-scatter; restore the real setting
    # The inherited heap (stream lists, loaded modules) is read-mostly
    # and outlives the worker: move it to the permanent generation so
    # worker collections scan only the worker's own allocations and
    # the GC never dirties inherited copy-on-write pages (the standard
    # pre-fork worker idiom).
    gc.freeze()
    if task.fault == "crash":
        os._exit(13)
    if task.fault == "hang":  # pragma: no cover - killed by parent
        time.sleep(3600.0)
        os._exit(0)
    try:
        payload: object = execute_shard_task(task)
    except BaseException as exc:  # noqa: BLE001 - report, then die
        payload = ShardFailure(task.shard_idx,
                               f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
        conn.close()
    except BaseException:  # noqa: BLE001 - parent sees EOF instead
        os._exit(1)


# -- the fail-closed pool -----------------------------------------------------

def _mp_context():
    """Prefer fork (cheap, no task pickling); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


def _emit_health_alert(observability: Observability, shard_idx: int,
                       n_shards: int, reason: str) -> None:
    """Route a shard failure through the health-alert span channel."""
    attrs = dict(
        rule="shard.worker", severity="critical",
        message=(f"shard {shard_idx}/{n_shards} {reason}; "
                 "run aborted fail-closed, no results delivered"),
        value=float(shard_idx), threshold=float(n_shards))
    tracer = observability.tracer
    if isinstance(tracer, Tracer):
        tracer.event("health.alert", keep=True, **attrs)
    elif tracer.enabled:
        tracer.span("health.alert", **attrs)


def _terminate_all(workers) -> None:
    """Kill every worker and reap it (bounded drain, never blocks)."""
    for proc, conn in workers:
        if proc.is_alive():
            proc.terminate()
    for proc, conn in workers:
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - terminate refused
            proc.kill()
            proc.join(timeout=5.0)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def _collect(workers, observability: Observability, n_shards: int,
             timeout: float) -> "list[ShardResult]":
    """Receive one result per worker, or abort the whole pool.

    Poll-with-deadline loop: a worker that exits without reporting, or
    that fails to report within ``timeout``, fails the run.  On any
    failure every worker is terminated before raising, so no orphan
    process outlives the run and no partial results escape.
    """
    results: "list[ShardResult | None]" = [None] * len(workers)
    deadline = time.monotonic() + timeout
    failure: "tuple[int, str] | None" = None
    for index, (proc, conn) in enumerate(workers):
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                failure = (index, "timed out mid-run")
                break
            if conn.poll(min(0.05, remaining)):
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    failure = (index, "died before reporting")
                    break
                if isinstance(payload, ShardFailure):
                    failure = (index, f"failed: {payload.message}")
                    break
                results[index] = payload
                break
            if not proc.is_alive() and not conn.poll(0):
                failure = (index,
                           f"exited mid-run (code {proc.exitcode})")
                break
        if failure is not None:
            break
    _terminate_all(workers)
    if failure is not None:
        shard_idx, reason = failure
        _emit_health_alert(observability, shard_idx, n_shards, reason)
        raise ShardExecutionError(
            f"shard {shard_idx}/{n_shards} {reason}; results "
            "withheld (fail-closed)")
    return [result for result in results if result is not None]


# -- the coordinator ----------------------------------------------------------

def run_sharded(dsms: "DSMS", *, n_shards: int,
                optimize: "OptimizeLevel | bool | str" =
                OptimizeLevel.NONE,
                analyze_sps: bool = True,
                batching: bool = True,
                columnar: bool = True,
                timeout: float = DEFAULT_TIMEOUT,
                faults: "dict[int, str] | None" = None,
                ) -> "dict[str, QueryResult]":
    """Execute a DSMS workload across ``n_shards`` worker processes.

    The public entry is ``DSMS.run(shards=N)``; see the module
    docstring for the pipeline.  ``faults`` injects worker faults by
    shard index (``"crash"`` / ``"hang"``) for the fault-injection
    suite and is not part of the public surface.
    """
    from repro.engine.dsms import DSMS, QueryResult

    if n_shards < 1:
        raise ValueError("shards must be >= 1")
    if not dsms.queries:
        raise QueryError("no queries registered")
    wall_start = time.perf_counter()
    level = OptimizeLevel.coerce(optimize)
    exprs = dsms._optimized_exprs(level)
    roles = {name: frozenset(query.roles)
             for name, query in dsms.queries.items()}
    local_queries, split_queries, registry = split_workload(
        exprs, roles)

    # Partition every registered stream on raw segment boundaries.
    # The SP Analyzer runs inside the workers (in parallel): server
    # policy refinement never dissolves a batch boundary, so raw and
    # analyzed boundaries agree chunk for chunk.
    context = _mp_context()
    # With the fork start method workers inherit the coordinator's
    # stream lists copy-on-write, so the coordinator only routes
    # chunk *spans* and each worker slices its own sub-stream in
    # parallel.  Under spawn the task is pickled, so shipping the full
    # stream per worker would be far worse than a serial scatter.
    fork_scatter = context.get_start_method() == "fork"
    # The whole coordinator-side scatter/gather is one bounded bulk
    # phase: partitioning allocates routing structures over the full
    # stream and collection materializes one container per delivered
    # element.  With the generational GC live, those allocation bursts
    # trigger repeated full-heap scans mid-phase, roughly doubling the
    # serial cost — suspend collection for the phase and restore the
    # caller's setting afterwards.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        serial_start = time.process_time()
        schemas: "dict[str, tuple[str, ...]]" = {}
        analyze_map: "dict[str, bool]" = {}
        per_shard: "list[dict[str, list[StreamElement]]]" = [
            {} for _ in range(n_shards)]
        per_shard_spans: "list[dict[str, list[tuple[int, int]]]]" = [
            {} for _ in range(n_shards)]
        for sid in dsms.catalog.stream_ids():
            registered = dsms.catalog.get(sid)
            if registered.source is None:
                continue
            schemas[sid] = tuple(registered.schema.attributes)
            analyze_map[sid] = bool(analyze_sps
                                    and registered.carries_policies)
            elements = list(registered.source)
            if fork_scatter:
                for shard_idx, spans in enumerate(
                        partition_spans(sid, elements, n_shards)):
                    if spans:
                        per_shard[shard_idx][sid] = elements
                        per_shard_spans[shard_idx][sid] = spans
            else:
                for shard_idx, part in enumerate(
                        partition_stream(sid, elements, n_shards)):
                    if part:
                        per_shard[shard_idx][sid] = part
        partition_seconds = time.process_time() - serial_start

        units = [(unit_sid, expr)
                 for unit_sid, expr, _ in registry.ordered]
        audit_on = dsms.observability.audit is not None
        tracing_on = dsms.observability.tracer.enabled
        workers = []
        for shard_idx in range(n_shards):
            task = ShardTask(
                shard_idx=shard_idx, n_shards=n_shards,
                schemas=schemas, streams=per_shard[shard_idx],
                analyze=analyze_map, units=units,
                local_queries=local_queries,
                server_sps=dsms.analyzer.server_sps,
                batching=batching, columnar=columnar,
                min_fused_rows=_fusion.MIN_FUSED_ROWS,
                audit=audit_on, tracing=tracing_on,
                fault=(faults or {}).get(shard_idx),
                spans=(per_shard_spans[shard_idx]
                       if fork_scatter else None),
                gc_enabled=gc_was_enabled)
            recv_conn, send_conn = context.Pipe(duplex=False)
            proc = context.Process(target=_shard_worker_main,
                                   args=(task, send_conn), daemon=True)
            proc.start()
            send_conn.close()
            workers.append((proc, recv_conn))
        # Coordinator CPU spent in collection is (mostly) result
        # deserialization — real serial cost on the critical path.
        # The poll wait itself doesn't accrue process CPU time.
        serial_start = time.process_time()
        results = _collect(workers, dsms.observability, n_shards,
                           timeout)
        collect_seconds = time.process_time() - serial_start

        # Merge worker outputs back into exact single-stream order.
        serial_start = time.process_time()
        unit_streams = {
            unit_sid: merge_chunk_runs(
                [result.units.get(unit_sid, []) for result in results])
            for unit_sid, _, _ in registry.ordered}
        local_elements = {
            name: merge_chunk_runs(
                [result.local.get(name, []) for result in results])
            for name, _, _ in local_queries}
        merge_seconds = time.process_time() - serial_start
    finally:
        if gc_was_enabled:
            gc.enable()

    # Route shard audit events and spans through the coordinator's
    # Observability with shard labels (single-system audit view).
    if audit_on:
        log = dsms.observability.audit
        for result in results:
            for event in result.audit_events:
                log.record(event.kind, ts=event.ts,
                           operator=event.operator, query=event.query,
                           sid=event.sid, tid=event.tid,
                           predicate=event.predicate,
                           policy=event.policy, sp=event.sp,
                           shard=result.shard_idx, **event.detail)
    if tracing_on:
        tracer = dsms.observability.tracer
        for result in results:
            for span in result.spans:
                attrs = dict(span.attrs)
                attrs["shard"] = result.shard_idx
                tracer.emit(SpanEvent(span.name, span.wall, attrs,
                                      mono=span.mono))

    # Stateful suffixes run in-process over the merged unit streams,
    # sharing the coordinator's universe and observability so audit,
    # metrics and delivery shields look exactly like a local run.
    suffix_results: "dict[str, QueryResult]" = {}
    suffix_report: ExecutionReport | None = None
    serial_start = time.process_time()
    if split_queries:
        suffix = DSMS(universe=dsms.universe,
                      observability=dsms.observability)
        for unit_sid, _, source_sid in registry.ordered:
            suffix.register_stream(
                StreamSchema(unit_sid, schemas[source_sid]),
                unit_streams[unit_sid])
        for name, expr in split_queries.items():
            suffix.register_query(name, expr, roles=roles[name],
                                  auto_shield=False)
        suffix_results = suffix.run(optimize=OptimizeLevel.NONE,
                                    analyze_sps=False,
                                    batching=batching,
                                    columnar=columnar)
        suffix_report = suffix.last_report
    suffix_seconds = time.process_time() - serial_start

    report = ExecutionReport()
    report.elements_in = sum(r.elements_in for r in results)
    report.tuples_in = sum(r.tuples_in for r in results)
    report.sps_in = sum(r.sps_in for r in results)
    stages: "list[StageStats]" = []
    for result in results:
        stages.extend(
            replace(stage, name=f"shard{result.shard_idx}/"
                                f"{stage.name}")
            for stage in result.stages)
    if suffix_report is not None:
        stages.extend(suffix_report.stages)
    report.stages = stages
    report.wall_time = time.perf_counter() - wall_start
    worker_cpu = [result.cpu_seconds for result in results]
    report.shard_timing = {
        "n_shards": n_shards,
        "partition_seconds": partition_seconds,
        "collect_seconds": collect_seconds,
        "merge_seconds": merge_seconds,
        "suffix_cpu_seconds": suffix_seconds,
        "worker_cpu_seconds": worker_cpu,
        "max_worker_cpu_seconds": max(worker_cpu, default=0.0),
        "critical_path_seconds": (partition_seconds + collect_seconds
                                  + merge_seconds + suffix_seconds
                                  + max(worker_cpu, default=0.0)),
        "elements_in": report.elements_in,
    }
    dsms.last_report = report

    out: "dict[str, QueryResult]" = {}
    for name in dsms.queries:
        if name in split_queries:
            out[name] = suffix_results[name]
        else:
            out[name] = QueryResult(name, local_elements[name])
    return out
