"""The DSMS facade: streams in, sps analyzed, queries out (Figure 1).

:class:`DSMS` wires together everything the paper's architecture
diagram shows: data providers' streams (with embedded sps) enter
through the SP Analyzer; registered continuous queries — each guarded
by Security Shields for its specifier's roles — run as one shared
physical plan; each query's results are collected separately.

Typical use::

    dsms = DSMS()
    dsms.register_stream(schema, elements)
    dsms.register_query("q1", ScanExpr("s1").select(cond), roles={"D"})
    results = dsms.run()
    results["q1"].tuples

The facade also implements the paper's future-work items: runtime
role re-binding for queries (:meth:`update_query_roles`) and
incremental policy changes (new sps simply stream in; nothing is
stored server-side).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.access.rbac import RBACModel
from repro.algebra.expressions import LogicalExpr, ShieldExpr, walk
from repro.algebra.optimizer import Optimizer
from repro.algebra.rules import RewriteContext
from repro.algebra.statistics import StreamStatistics
from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.exprcheck import analyze_expr
from repro.analysis.lattice import StreamFacts
from repro.analysis.plancheck import analyze_plan
from repro.core.analyzer import SPAnalyzer
from repro.core.bitmap import RoleSet, RoleUniverse
from repro.core.punctuation import SecurityPunctuation
from repro.engine.api import OptimizeLevel
from repro.engine.catalog import StreamCatalog
from repro.engine.executor import ExecutionReport, Executor
from repro.engine.plan import PhysicalPlan
from repro.engine.query import ContinuousQuery
from repro.errors import PlanAnalysisError, PlanAnalysisWarning, QueryError
from repro.observability import AuditLog, Observability, Tracer
from repro.operators.shield import SecurityShield
from repro.operators.sink import CollectingSink
from repro.stream.batch import coalesce_elements
from repro.stream.element import StreamElement
from repro.stream.schema import StreamSchema
from repro.stream.source import CallbackSource, ListSource, StreamSource
from repro.stream.tuples import DataTuple

__all__ = ["DSMS", "QueryResult"]


@dataclass
class QueryResult:
    """Results of one query after a run."""

    name: str
    elements: list[StreamElement] = field(default_factory=list)

    @property
    def tuples(self) -> list[DataTuple]:
        return [e for e in self.elements if isinstance(e, DataTuple)]

    @property
    def sps(self) -> list[SecurityPunctuation]:
        return [e for e in self.elements
                if isinstance(e, SecurityPunctuation)]

    def __repr__(self) -> str:
        return (f"QueryResult({self.name!r}, tuples={len(self.tuples)}, "
                f"sps={len(self.sps)})")


class DSMS:
    """A centralized data stream management system with sp enforcement."""

    def __init__(self, *, rbac: RBACModel | None = None,
                 universe: RoleUniverse | None = None,
                 observability: Observability | None = None):
        if universe is None:
            universe = rbac.universe if rbac is not None else RoleUniverse()
        self.universe = universe
        self.rbac = rbac
        #: Audit log + trace sink; the default records nothing and
        #: costs nothing (pass ``Observability.in_memory()`` to turn
        #: the audit trail and tracing on).
        self.observability = (observability if observability is not None
                              else Observability.disabled())
        self.analyzer = SPAnalyzer(universe)
        self.analyzer.bind_observability(self.observability)
        self.catalog = StreamCatalog()
        self.queries: dict[str, ContinuousQuery] = {}
        self._live_plan: PhysicalPlan | None = None
        self._live_shields: dict[str, list[SecurityShield]] = {}
        self.last_report: ExecutionReport | None = None

    @property
    def audit(self) -> AuditLog | None:
        """The security audit trail (``None`` when observability is off)."""
        return self.observability.audit

    # -- streams --------------------------------------------------------
    def register_stream(self, schema: StreamSchema,
                        elements=None, *, source: StreamSource | None = None,
                        carries_policies: bool = True,
                        stats: StreamStatistics | None = None) -> None:
        """Register an input stream with its element source."""
        if source is None and elements is not None:
            source = ListSource(schema, list(elements))
        self.catalog.register(schema, source, carries_policies=carries_policies,
                              stats=stats)

    def add_server_policy(self, sp: SecurityPunctuation) -> None:
        """Server-side policy, intersected with provider sps on entry."""
        self.analyzer.add_server_policy(sp)

    # -- queries ---------------------------------------------------------
    def register_query(self, name: str, expr: LogicalExpr, *,
                       roles=None, user_id: str | None = None,
                       auto_shield: bool = True,
                       analyze: str = "off") -> ContinuousQuery:
        """Register a continuous query for a set of roles or a user.

        With ``user_id`` (requires an RBAC model) the query inherits
        the user's active roles and the user is locked against role
        re-assignment for the lifetime of the registration.

        ``analyze`` selects static plan analysis: ``"off"`` (default),
        ``"warn"`` (findings emitted as :class:`PlanAnalysisWarning`),
        or ``"strict"`` (error-severity findings raise
        :class:`PlanAnalysisError` and the query is *not* registered —
        rejection happens before a single tuple flows).  The chosen
        mode also re-runs the analysis over the compiled operator DAG
        at :meth:`build_plan` time.
        """
        if name in self.queries:
            raise QueryError(f"query {name!r} already registered")
        locked = False
        if roles is None:
            if user_id is None or self.rbac is None:
                raise QueryError(
                    "provide roles, or a user_id with an RBAC model")
            roles = self.rbac.roles_of(user_id)
            session = self.rbac.session_of(user_id)
            if session is not None:
                roles = session.active_roles
            self.rbac.lock(user_id)
            locked = True
        for role in roles:
            self.universe.register(role)
        query = ContinuousQuery(name, expr, roles, user_id=user_id,
                                auto_shield=auto_shield, analyze=analyze)
        if query.analyze != "off":
            report = analyze_expr(
                query.expr, facts=self._stream_facts(),
                roles=sorted(query.roles), name=name)
            try:
                self._apply_analysis(report, query.analyze,
                                     where=f"query {name!r}")
            except PlanAnalysisError:
                if locked and self.rbac is not None:
                    self.rbac.unlock(user_id)
                raise
        self.queries[name] = query
        self._live_plan = None
        return query

    def _stream_facts(self) -> StreamFacts:
        """Catalog schemas as (otherwise-unknown) static stream facts.

        Stream *contents* are runtime data the static layer must not
        assume, so the facts stay three-valued unknown; the declared
        schemas alone let the lattice track attribute sets.
        """
        return StreamFacts(schemas={
            sid: tuple(self.catalog.get(sid).schema.attributes)
            for sid in self.catalog.stream_ids()})

    def _apply_analysis(self, report: AnalysisReport, mode: str,
                        where: str) -> None:
        """Enforce one analysis report per the registration's mode."""
        if mode == "strict" and not report.ok:
            raise PlanAnalysisError(
                f"{where}: static analysis found "
                f"{len(report.errors)} error(s):\n"
                + report.render_text("  "), report)
        for diagnostic in report.errors + report.warnings:
            warnings.warn(f"{where}: {diagnostic}",
                          PlanAnalysisWarning, stacklevel=3)

    def deregister_query(self, name: str) -> None:
        query = self.queries.pop(name, None)
        if query is None:
            raise QueryError(f"unknown query: {name!r}")
        if query.user_id is not None and self.rbac is not None:
            self.rbac.unlock(query.user_id)
        self._live_plan = None

    def update_query_roles(self, name: str, roles) -> None:
        """Runtime role re-binding (paper future work).

        Updates the registered query's roles and, if a compiled plan is
        live, rewrites the predicates of that query's Security Shields
        in place — taking effect from the next processed element.
        """
        query = self.queries.get(name)
        if query is None:
            raise QueryError(f"unknown query: {name!r}")
        roles = frozenset(roles)
        if not roles:
            raise QueryError("a query must keep at least one role")
        old_expr = query.expr
        new_expr = _replace_shield_roles(old_expr, query.roles, roles)
        self.queries[name] = query.with_expr(new_expr)
        self.queries[name].roles = roles  # type: ignore[misc]
        for shield in self._live_shields.get(name, ()):
            shield.rebind(RoleSet(roles))

    def shields(self, query_name: str) -> tuple[SecurityShield, ...]:
        """Read-only view of a query's live Security Shields.

        Includes the per-query delivery shield; empty until a plan has
        been compiled (:meth:`build_plan`, :meth:`run` or
        :meth:`open_session`).  This is the public surface callers and
        the audit layer use instead of reaching into plan internals.
        """
        if query_name not in self.queries:
            raise QueryError(f"unknown query: {query_name!r}")
        return tuple(self._live_shields.get(query_name, ()))

    # -- execution -----------------------------------------------------------
    def _optimized_exprs(self, level: OptimizeLevel
                         ) -> dict[str, LogicalExpr]:
        """Each registered query's logical plan at ``level``.

        The optimization step shared by :meth:`build_plan` and the
        sharded executor (:mod:`repro.engine.sharded`), so both paths
        execute identical plans.  The executing engine must assume the
        worst about runtime streams: attribute-granular sps, segments
        with differing policies and real window semantics can all
        occur, so the rewrites those facts invalidate stay off here
        (pure-algebra exploration can still opt back in via its own
        context).
        """
        context = RewriteContext(
            policy_streams=self.catalog.policy_streams(),
            attribute_policies_possible=True,
            heterogeneous_policies_possible=True,
            strict_join_windows=True,
            schemas={
                sid: frozenset(self.catalog.get(sid).schema.attributes)
                for sid in self.catalog.stream_ids()
            })
        optimizer = Optimizer(context=context)
        optimizer.cost_model.catalog = self.catalog.statistics
        workload_plans: dict[str, LogicalExpr] = {}
        if level is OptimizeLevel.WORKLOAD:
            names = list(self.queries)
            result = optimizer.optimize_workload(
                [self.queries[name].expr for name in names])
            workload_plans = dict(zip(names, result.plans))
        tracer = self.observability.tracer
        causal = tracer if isinstance(tracer, Tracer) else None
        exprs: dict[str, LogicalExpr] = {}
        for name, query in self.queries.items():
            expr = query.expr
            if level is OptimizeLevel.WORKLOAD:
                expr = workload_plans[name]
            elif level is OptimizeLevel.PER_QUERY:
                result = optimizer.optimize(expr)
                expr = result.plan
                if causal is not None and result.steps > 0:
                    # Table II rewrites are security-relevant plan
                    # surgery: record which queries were rewritten (and
                    # what the prover refused) as kept provenance.
                    causal.decision(
                        "optimizer.rewrite", operator="optimizer",
                        verdict="rewritten", query=name, keep=True,
                        steps=result.steps,
                        initial_cost=result.initial_cost,
                        cost=result.cost,
                        refusals=len(result.refusals))
            exprs[name] = expr
        return exprs

    def build_plan(self, *,
                   optimize: "OptimizeLevel | bool | str" = OptimizeLevel.NONE
                   ) -> tuple[PhysicalPlan, dict[str, CollectingSink]]:
        """Compile all registered queries into one shared physical plan.

        ``optimize`` is an :class:`~repro.engine.api.OptimizeLevel`:
        ``NONE`` (compile as registered), ``PER_QUERY`` (optimize each
        query in isolation) or ``WORKLOAD`` (Section VI.C multi-query
        optimization: choose per-query plans that minimize the cost of
        the workload with shared subplans counted once).  The legacy
        ``False`` / ``True`` / ``"workload"`` values are accepted with
        a :class:`DeprecationWarning`.
        """
        level = OptimizeLevel.coerce(optimize)
        if not self.queries:
            raise QueryError("no queries registered")
        plan = PhysicalPlan(self.universe)
        sinks: dict[str, CollectingSink] = {}
        self._live_shields = {}
        exprs = self._optimized_exprs(level)
        for name, query in self.queries.items():
            expr = exprs[name]
            sink = CollectingSink(name=f"sink:{name}")
            # The delivery shield is a fixed final check: results are
            # handed only to subjects holding the query's roles, no
            # matter how the optimizer moved the in-plan shields.  For
            # an unrewritten plan it is a cheap no-op (everything the
            # root shield passed also passes here).
            delivery = SecurityShield(RoleSet(query.roles),
                                      name=f"delivery:{name}")
            plan.compile_chain(expr, [delivery, sink])
            sinks[name] = sink
            shields = []
            for node in walk(expr):
                if not isinstance(node, ShieldExpr):
                    continue
                compiled = plan.compiled_node(node)
                if compiled is not None and isinstance(
                        compiled.operator, SecurityShield):
                    shields.append(compiled.operator)
            self._live_shields[name] = shields + [delivery]
            for shield in self._live_shields[name]:
                self.observability.bind(shield, query=name)
        # Shared (query-anonymous) operators — joins, dup-elim,
        # group-by — record through the same audit log.
        if self.observability.audit is not None:
            for operator in plan.operators():
                if operator.audit is None:
                    self.observability.bind(operator)
        # Metrics: every operator pre-binds its instrument children
        # once here, so recording sites cost one attribute check.
        instruments = self.observability.instruments
        if instruments is not None:
            for operator in plan.operators():
                operator.bind_metrics(instruments)
        # Causal tracing: every operator gets the tracer so security
        # decision sites can attach provenance records.
        tracer = self.observability.tracer
        causal = tracer if isinstance(tracer, Tracer) else None
        if causal is not None:
            for operator in plan.operators():
                operator.bind_tracer(causal)
        modes = {query.analyze for query in self.queries.values()}
        if modes != {"off"}:
            # Second analysis layer: the compiled DAG, where shared
            # subplans, optimizer rewrites and the delivery shields
            # are all concrete.
            mode = "strict" if "strict" in modes else "warn"
            self._apply_analysis(analyze_plan(plan,
                                              facts=self._stream_facts()),
                                 mode, where="compiled plan")
        self._live_plan = plan
        return plan, sinks

    def _analyzed_sources(self, *,
                          coalesce: bool = False) -> list[StreamSource]:
        """Sources with sp analysis applied (policy-carrying streams).

        With ``coalesce=True`` each source also groups tuple runs into
        :class:`~repro.stream.batch.TupleBatch` envelopes inside the
        same generator (``analyze_batched``), for the executor's
        pre-batched single-source fast path.
        """
        sources: list[StreamSource] = []
        for stream_id in self.catalog.stream_ids():
            registered = self.catalog.get(stream_id)
            if registered.source is None:
                continue
            base = registered.source
            if registered.carries_policies:
                if coalesce:
                    factory = (
                        lambda b=base: self.analyzer.analyze_batched(
                            iter(b)))
                else:
                    factory = (
                        lambda b=base: self.analyzer.analyze(iter(b)))
                sources.append(CallbackSource(registered.schema, factory))
            elif coalesce:
                sources.append(CallbackSource(
                    registered.schema,
                    (lambda b=base: coalesce_elements(iter(b)))))
            else:
                sources.append(base)
        return sources

    def open_session(self, *,
                     optimize: "OptimizeLevel | bool | str" =
                     OptimizeLevel.NONE,
                     analyze_sps: bool = True):
        """Open a live :class:`~repro.engine.session.StreamingSession`.

        The session keeps the compiled plan and lets the caller push
        elements incrementally; results arrive per push (or via
        subscriptions).  Useful where :meth:`run`'s finite-source model
        does not fit.
        """
        from repro.engine.session import StreamingSession

        return StreamingSession(self, optimize=optimize,
                                analyze_sps=analyze_sps)

    def run(self, *,
            optimize: "OptimizeLevel | bool | str" = OptimizeLevel.NONE,
            analyze_sps: bool = True,
            batching: bool = True,
            columnar: bool = True,
            shards: int | None = None) -> dict[str, QueryResult]:
        """Execute all queries over all registered sources.

        ``optimize`` as in :meth:`build_plan` (an
        :class:`~repro.engine.api.OptimizeLevel`; legacy bool/str
        values accepted with a :class:`DeprecationWarning`).

        ``shards`` selects the partitioned multi-process executor
        (:mod:`repro.engine.sharded`): input streams are cut on
        s-punctuated segment boundaries and hash-routed across
        ``shards`` worker processes, each running its own SP Analyzer
        and shield state; stateful operators and delivery run over the
        merged, order-restored streams.  ``None`` (the default) keeps
        the single-process path; results, drop counters and audit
        streams are equivalent either way, per the differential
        oracle.

        ``batching`` selects segment-batched execution (the default):
        runs of tuples sharing one sp-batch are pushed through the
        plan as :class:`~repro.stream.batch.TupleBatch` envelopes, so
        per-segment decisions amortize over whole runs.  Results —
        and, with observability on, audit streams — are identical in
        both modes; ``batching=False`` keeps the element-wise
        reference path (and is what the equivalence tests compare
        against).

        ``columnar`` (effective only with batching) additionally fuses
        eligible shield/select/project chains into single columnar
        passes over :class:`~repro.stream.columnar.ColumnBatch`
        layouts; results, counters and audit streams again stay
        identical, per the differential oracle.
        """
        if shards is not None:
            from repro.engine.sharded import run_sharded

            return run_sharded(self, n_shards=shards,
                               optimize=optimize,
                               analyze_sps=analyze_sps,
                               batching=batching, columnar=columnar)
        plan, sinks = self.build_plan(optimize=optimize)
        sources = (self._analyzed_sources() if analyze_sps
                   else self.catalog.sources())
        prebatched = False
        if batching and len(sources) == 1:
            # Single-source workload: fuse sp analysis and run
            # coalescing into the source generator itself, and tell
            # the executor to skip its own coalescing layer.
            if analyze_sps:
                sources = self._analyzed_sources(coalesce=True)
            else:
                base = sources[0]
                sources = [CallbackSource(
                    base.schema,
                    (lambda b=base: coalesce_elements(iter(b))))]
            prebatched = True
        executor = Executor(plan, sources,
                            tracer=self.observability.tracer,
                            batching=batching,
                            columnar=columnar,
                            prebatched=prebatched,
                            instruments=self.observability.instruments)
        self.last_report = executor.run()
        return {
            name: QueryResult(name, list(sink.elements))
            for name, sink in sinks.items()
        }


def _replace_shield_roles(expr: LogicalExpr, old: frozenset[str],
                          new: frozenset[str]) -> LogicalExpr:
    """Rewrite shields whose only predicate is ``old`` to ``new``."""
    if isinstance(expr, ShieldExpr) and expr.predicates == (frozenset(old),):
        return ShieldExpr(
            _replace_shield_roles(expr.input, old, new), frozenset(new))
    children = tuple(_replace_shield_roles(c, old, new)
                     for c in expr.children())
    if not children:
        return expr
    return expr.with_children(*children)
