"""Security Punctuations: access control for streaming data.

A from-scratch reproduction of *"A Security Punctuation Framework for
Enforcing Access Control on Streaming Data"* (Nehme, Rundensteiner,
Bertino — ICDE 2008): in-stream access-control metadata (security
punctuations), a security-aware stream algebra with the Security
Shield operator and SAJoin, equivalence rules with a cost-based
optimizer, a pipelined DSMS, the paper's baselines, and the full
Section VII experiment harness.

Quickstart::

    from repro import DSMS, ScanExpr, SecurityPunctuation, DataTuple
    from repro.stream import StreamSchema

    dsms = DSMS()
    dsms.register_stream(StreamSchema("hr", ["patient", "bpm"]), [
        SecurityPunctuation.grant(["D"], ts=0.0),
        DataTuple("hr", 1, {"patient": 1, "bpm": 72}, 1.0),
    ])
    dsms.register_query("q", ScanExpr("hr"), roles={"D"})
    print(dsms.run()["q"].tuples)
"""

from repro.algebra import (CostModel, JoinExpr, Optimizer, ProjectExpr,
                           ScanExpr, SelectExpr, ShieldExpr)
from repro.analysis import (AnalysisReport, Diagnostic, Severity,
                            analyze_expr, analyze_plan)
from repro.core import (Policy, RoleSet, RoleUniverse, SecurityPunctuation,
                        Sign, SPAnalyzer, TuplePolicy)
from repro.engine import DSMS, ContinuousQuery, OptimizeLevel, QueryResult
from repro.errors import (PlanAnalysisError, PlanAnalysisWarning,
                          ReproError)
from repro.observability import (AuditEvent, AuditLog, JsonlTraceSink,
                                 NullTraceSink, Observability,
                                 RingBufferTraceSink, StageStats, TraceSink)
from repro.operators import (IndexSAJoin, NestedLoopSAJoin, Project,
                             SecurityShield, Select)
from repro.stream import DataTuple, StreamSchema

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "AuditEvent",
    "AuditLog",
    "ContinuousQuery",
    "CostModel",
    "DSMS",
    "DataTuple",
    "Diagnostic",
    "IndexSAJoin",
    "JoinExpr",
    "JsonlTraceSink",
    "NestedLoopSAJoin",
    "NullTraceSink",
    "Observability",
    "OptimizeLevel",
    "Optimizer",
    "PlanAnalysisError",
    "PlanAnalysisWarning",
    "Policy",
    "Project",
    "ProjectExpr",
    "QueryResult",
    "ReproError",
    "RingBufferTraceSink",
    "RoleSet",
    "RoleUniverse",
    "SPAnalyzer",
    "ScanExpr",
    "SecurityPunctuation",
    "SecurityShield",
    "Select",
    "SelectExpr",
    "Severity",
    "ShieldExpr",
    "Sign",
    "StageStats",
    "StreamSchema",
    "TraceSink",
    "TuplePolicy",
    "__version__",
    "analyze_expr",
    "analyze_plan",
]
