"""Figure 7: comparison of access-control enforcement mechanisms.

The paper's first experiment runs a cheap select-project query ("all
moving objects in the two-mile region around the store") under three
enforcement mechanisms — store-and-probe, tuple-embedded policies, and
security punctuations — and measures:

* **7a** output rate (tuples/ms) vs the sp:tuple ratio,
* **7b** processing cost per tuple (ms) vs the sp:tuple ratio,
* **7c** memory (MB) vs the policy size |R| (ratio fixed at 1/10),
* **7d** processing cost per 100 tuples vs the policy size |R|.

Workload: the synthetic punctuated stream of
:mod:`repro.workloads.synthetic` (segment-scoped tuple-granularity
policies, exactly the paper's setup).  For 7c/7d the policy is one
large role list re-announced every segment — "policies with a lot of
individual role authorizations, such that regular expressions cannot
help minimize the policy definition".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.store_and_probe import (StoreAndProbeEnforcer,
                                             persistent_table_bytes)
from repro.baselines.tuple_embedded import (TupleEmbeddedEnforcer,
                                            embed_policies)
from repro.core.punctuation import SecurityPunctuation
from repro.metrics.measurement import Timer, deep_sizeof
from repro.operators.conditions import FuncCondition
from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.shield import SecurityShield
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.workloads.synthetic import QUERY_ROLE, punctuated_stream, role_names

__all__ = [
    "MechanismResult",
    "PAPER_RATIOS",
    "PAPER_POLICY_SIZES",
    "region_condition",
    "run_sp_mechanism",
    "run_store_and_probe",
    "run_tuple_embedded",
    "experiment_fig7ab",
    "experiment_fig7cd",
]

#: The x-axis of Figures 7a/7b: 1/1, 1/10, 1/25, 1/50, 1/100.
PAPER_RATIOS = (1, 10, 25, 50, 100)
#: The x-axis of Figures 7c/7d.
PAPER_POLICY_SIZES = (1, 10, 25, 50, 100)

#: Store position and radius of the running query ("two mile region").
STORE_X, STORE_Y, REGION_RADIUS = 500.0, 500.0, 350.0


def region_condition() -> FuncCondition:
    """Tuples within the region around the store."""

    def in_region(item: DataTuple) -> bool:
        dx = item.values["x"] - STORE_X
        dy = item.values["y"] - STORE_Y
        return dx * dx + dy * dy <= REGION_RADIUS * REGION_RADIUS

    return FuncCondition(in_region, attributes=("x", "y"), label="in_region")


@dataclass
class MechanismResult:
    """One (mechanism, parameter point) measurement."""

    mechanism: str
    tuples_in: int
    tuples_out: int
    elapsed_ms: float
    memory_bytes: int

    @property
    def output_rate(self) -> float:
        """Output tuples per millisecond of processing."""
        if self.elapsed_ms <= 0:
            return 0.0
        return self.tuples_out / self.elapsed_ms

    @property
    def per_tuple_ms(self) -> float:
        if self.tuples_in <= 0:
            return 0.0
        return self.elapsed_ms / self.tuples_in

    @property
    def per_100_tuples_ms(self) -> float:
        return self.per_tuple_ms * 100.0

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / (1024.0 * 1024.0)


def _query_operators() -> tuple[Select, Project]:
    return (Select(region_condition()),
            Project(("object_id", "x", "y")))


def _drive_chain(elements, operators) -> int:
    """Push elements through an operator chain; return tuples out."""
    tuples_out = 0
    for element in elements:
        batch = [element]
        for operator in operators:
            next_batch: list[StreamElement] = []
            for item in batch:
                next_batch.extend(operator.process(item))
            batch = next_batch
            if not batch:
                break
        for item in batch:
            if isinstance(item, DataTuple):
                tuples_out += 1
    return tuples_out


def _inflight_sp_bytes(elements, buffer_size: int) -> int:
    """Memory of sps concurrently in the system.

    Models a server ingress/operator buffer holding the most recent
    ``buffer_size`` elements: the sp mechanism's policy memory is the
    sps inside that buffer (policies shared across their segments).
    One deep walk over all of them, so objects genuinely shared
    between sps (interned role strings, the wildcard pattern) are
    counted once.
    """
    window = elements[-buffer_size:] if buffer_size else elements
    sps = [e for e in window if isinstance(e, SecurityPunctuation)]
    return deep_sizeof(sps)


def _embedded_policy_bytes(policy_tuples, buffer_size: int) -> int:
    """Memory of the embedded per-tuple policy copies in the buffer."""
    window = (policy_tuples[-buffer_size:] if buffer_size
              else policy_tuples)
    return deep_sizeof([pt.policy for pt in window])


def run_sp_mechanism(elements: list[StreamElement], roles,
                     buffer_size: int = 500) -> MechanismResult:
    """Security-punctuation enforcement: SS → σ → π."""
    shield = SecurityShield(roles)
    select, project = _query_operators()
    timer = Timer()
    with timer:
        tuples_out = _drive_chain(elements, (shield, select, project))
    tuples_in = sum(1 for e in elements if isinstance(e, DataTuple))
    return MechanismResult(
        mechanism="security punctuations",
        tuples_in=tuples_in,
        tuples_out=tuples_out,
        elapsed_ms=timer.elapsed_ms,
        memory_bytes=_inflight_sp_bytes(elements, buffer_size),
    )


def run_store_and_probe(elements: list[StreamElement], roles,
                        buffer_size: int = 500) -> MechanismResult:
    """Store-and-probe enforcement: central table + per-tuple probe."""
    enforcer = StoreAndProbeEnforcer(roles)
    select, project = _query_operators()
    timer = Timer()
    with timer:
        tuples_out = _drive_chain(enforcer.ingest(elements),
                                  (select, project))
    tuples_in = sum(1 for e in elements if isinstance(e, DataTuple))
    return MechanismResult(
        mechanism="store-and-probe",
        tuples_in=tuples_in,
        tuples_out=tuples_out,
        elapsed_ms=timer.elapsed_ms,
        memory_bytes=persistent_table_bytes(enforcer.table),
    )


def run_tuple_embedded(elements: list[StreamElement], roles,
                       buffer_size: int = 500) -> MechanismResult:
    """Tuple-embedded enforcement: per-tuple policy copies.

    Under this architecture every arriving tuple is fat — it carries
    its own policy copy — so the server's ingest path pays a
    size-proportional materialization cost per tuple in addition to the
    per-tuple policy check.  Both are inside the timed section
    (``embed_policies`` is the ingest step that materializes each
    tuple's private policy copy into operator memory).
    """
    enforcer = TupleEmbeddedEnforcer(roles)
    select, project = _query_operators()
    policy_tuples = []
    timer = Timer()
    with timer:
        def ingest():
            for policy_tuple in embed_policies(elements):
                policy_tuples.append(policy_tuple)
                yield policy_tuple

        tuples_out = _drive_chain(enforcer.ingest(ingest()),
                                  (select, project))
    tuples_in = sum(1 for e in elements if isinstance(e, DataTuple))
    return MechanismResult(
        mechanism="tuple-embedded",
        tuples_in=tuples_in,
        tuples_out=tuples_out,
        elapsed_ms=timer.elapsed_ms,
        memory_bytes=_embedded_policy_bytes(policy_tuples, buffer_size),
    )


_MECHANISMS = (run_store_and_probe, run_tuple_embedded, run_sp_mechanism)


def experiment_fig7ab(n_tuples: int = 5000,
                      ratios=PAPER_RATIOS,
                      policy_size: int = 3,
                      repeats: int = 1,
                      seed: int = 7) -> list[dict]:
    """Output rate and per-tuple cost vs sp:tuple ratio (Figs 7a/7b).

    ``repeats`` > 1 keeps the best-of-N timing per mechanism (output
    counts are deterministic and identical across runs).
    """
    rows: list[dict] = []
    for ratio in ratios:
        elements = list(punctuated_stream(
            n_tuples, tuples_per_sp=ratio, policy_size=policy_size,
            accessible_fraction=0.6, seed=seed))
        for run in _MECHANISMS:
            best: MechanismResult | None = None
            for _ in range(max(repeats, 1)):
                result = run(elements, [QUERY_ROLE])
                if best is None or result.elapsed_ms < best.elapsed_ms:
                    best = result
            assert best is not None
            rows.append({
                "ratio": f"1/{ratio}",
                "mechanism": best.mechanism,
                "output_rate": best.output_rate,
                "per_tuple_ms": best.per_tuple_ms,
                "tuples_out": best.tuples_out,
            })
    return rows


def _large_policy_stream(n_tuples: int, policy_size: int,
                         tuples_per_sp: int, seed: int) -> list[StreamElement]:
    """One big shared policy re-announced per segment (Figs 7c/7d).

    All segments carry the *same* |R|-role policy (including the query
    role), so the central table stores a single copy while the sp
    mechanism streams one copy per in-flight segment — the exact
    contrast of Figure 7c.
    """
    rng = random.Random(seed)
    roles = sorted(set(role_names(policy_size - 1) + [QUERY_ROLE]))
    out: list[StreamElement] = []
    ts = 0.0
    emitted = 0
    while emitted < n_tuples:
        ts += 1.0
        out.append(SecurityPunctuation.grant(roles, ts, provider="synth"))
        for _ in range(min(tuples_per_sp, n_tuples - emitted)):
            ts += 1.0
            out.append(DataTuple(
                "synthetic", emitted,
                {"object_id": emitted,
                 "x": rng.uniform(0.0, 1000.0),
                 "y": rng.uniform(0.0, 1000.0)},
                ts))
            emitted += 1
    return out


def experiment_fig7cd(n_tuples: int = 4000,
                      policy_sizes=PAPER_POLICY_SIZES,
                      tuples_per_sp: int = 10,
                      buffer_size: int = 500,
                      seed: int = 11) -> list[dict]:
    """Memory and per-100-tuple cost vs policy size |R| (Figs 7c/7d)."""
    rows: list[dict] = []
    for policy_size in policy_sizes:
        elements = _large_policy_stream(n_tuples, policy_size,
                                        tuples_per_sp, seed)
        for run in _MECHANISMS:
            result = run(elements, [QUERY_ROLE], buffer_size=buffer_size)
            rows.append({
                "policy_size": policy_size,
                "mechanism": result.mechanism,
                "memory_mb": result.memory_mb,
                "memory_bytes": result.memory_bytes,
                "per_100_tuples_ms": result.per_100_tuples_ms,
            })
    return rows
