"""Figure 9: nested-loop vs index SAJoin across sp selectivities.

Both SAJoin variants run a sliding-window equijoin over two punctuated
streams whose policy compatibility σsp is controlled: σsp = 0 means no
cross-stream segment pair is policy-compatible (nothing may join),
σsp = 1 means every pair is compatible (everything may join).  The
total processing time per 100 tuples decomposes into join time, sp
maintenance and tuple maintenance, the three bars of Figure 9.

The paper's headline: the index SAJoin wins everywhere; the gap in
*join* time is largest at σsp = 0 (~75%, the SPIndex skips incompatible
segments entirely) and smallest at σsp = 1 (~28%, the index degenerates
toward a full scan but the skipping rule still avoids duplicate
probing), while sp maintenance stays comparatively low.
"""

from __future__ import annotations

from repro.core.bitmap import RoleUniverse
from repro.operators.index_join import IndexSAJoin
from repro.operators.join import NestedLoopSAJoin, SAJoinBase
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.workloads.synthetic import join_streams

__all__ = [
    "PAPER_SELECTIVITIES",
    "drive_join",
    "experiment_fig9",
]

PAPER_SELECTIVITIES = (0.0, 0.1, 0.5, 1.0)


def drive_join(join: SAJoinBase, left: list[StreamElement],
               right: list[StreamElement]) -> dict[str, float]:
    """Interleave both inputs by timestamp and run them through a join.

    Returns the per-100-input-tuples cost decomposition (ms).
    """
    merged: list[tuple[float, int, int, StreamElement]] = []
    for seq, element in enumerate(left):
        merged.append((element.ts, 0, seq, element))
    for seq, element in enumerate(right):
        merged.append((element.ts, 1, seq, element))
    merged.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    results = 0
    for _, port, _, element in merged:
        out = join.process(element, port)
        results += sum(1 for item in out if isinstance(item, DataTuple))
    tuples_in = sum(1 for e in left + right
                    if isinstance(e, DataTuple))
    scale = 100.0 * 1e3 / max(tuples_in, 1)
    breakdown = join.cost_breakdown()
    return {
        "join_ms": breakdown["join"] * scale,
        "sp_maintenance_ms": breakdown["sp_maintenance"] * scale,
        "tuple_maintenance_ms": breakdown["tuple_maintenance"] * scale,
        "total_ms": breakdown["total"] * scale,
        "results": results,
        "pairs_checked": join.pairs_checked,
    }


def experiment_fig9(n_tuples: int = 1500,
                    selectivities=PAPER_SELECTIVITIES,
                    tuples_per_sp: int = 10,
                    window: float = 400.0,
                    match_fraction: float = 0.15,
                    repeats: int = 1,
                    seed: int = 23) -> list[dict]:
    """The Figure 9 sweep over σsp for both SAJoin variants.

    ``repeats`` > 1 runs each configuration several times and keeps the
    per-component minimum timings (best-of-N suppresses scheduler
    noise; counts are identical across runs).
    """
    rows: list[dict] = []
    for sigma in selectivities:
        left, right, _, _ = join_streams(
            n_tuples, tuples_per_sp=tuples_per_sp, compatibility=sigma,
            match_fraction=match_fraction, seed=seed)
        for variant, make in (
            ("nested-loop", lambda: NestedLoopSAJoin(
                "key", "key", window, left_sid="left", right_sid="right")),
            ("index", lambda: IndexSAJoin(
                "key", "key", window, universe=RoleUniverse(),
                left_sid="left", right_sid="right")),
        ):
            best: dict[str, float] | None = None
            for _ in range(max(repeats, 1)):
                timings = drive_join(make(), left, right)
                if best is None:
                    best = timings
                else:
                    for key in ("join_ms", "sp_maintenance_ms",
                                "tuple_maintenance_ms", "total_ms"):
                        best[key] = min(best[key], timings[key])
            assert best is not None
            rows.append({"sigma_sp": sigma, "variant": variant, **best})
    return rows
