"""Figure 8: overhead of the Security Shield operator.

* **8a** — per-tuple cost of SS next to the cheapest query operators,
  select and project, across sp:tuple ratios.  At 1/1 every tuple has
  its own sp and SS behaves like a selection over sps; as sharing
  grows the per-segment decision is amortized over many tuples and the
  SS overhead drops sharply.
* **8b** — SS cost as the number of roles in its state grows
  (R ∈ {1, 10, 50, 100, 500}): bigger states cost more, but SS stays a
  small fraction of total query cost (≤ ~20% in the paper).

Per-operator timing comes from the operators' own
``stats.processing_time`` accounting, measured inside one shared
pipeline run (π ← σ ← SS), so all three operators see identical
element sequences.
"""

from __future__ import annotations

from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.shield import SecurityShield
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.workloads.synthetic import (QUERY_ROLE, punctuated_stream,
                                       role_names)
from repro.experiments.fig7 import region_condition

__all__ = [
    "PAPER_SS_RATIOS",
    "PAPER_ROLE_COUNTS",
    "run_pipeline",
    "experiment_fig8a",
    "experiment_fig8b",
]

PAPER_SS_RATIOS = (1, 10, 25, 50, 100)
PAPER_ROLE_COUNTS = (1, 10, 50, 100, 500)


def run_pipeline(elements: list[StreamElement], shield: SecurityShield
                 ) -> dict[str, float]:
    """Run SS → σ → π over ``elements``; return per-tuple ms per operator."""
    select = Select(region_condition())
    project = Project(("object_id", "x", "y"))
    operators = (shield, select, project)
    for element in elements:
        batch = [element]
        for operator in operators:
            next_batch: list[StreamElement] = []
            for item in batch:
                next_batch.extend(operator.process(item))
            batch = next_batch
            if not batch:
                break
    tuples_in = sum(1 for e in elements if isinstance(e, DataTuple))
    divisor = max(tuples_in, 1)
    total = sum(op.stats.processing_time for op in operators)
    return {
        "ss_ms": shield.stats.processing_time * 1e3 / divisor,
        "select_ms": select.stats.processing_time * 1e3 / divisor,
        "project_ms": project.stats.processing_time * 1e3 / divisor,
        "total_ms": total * 1e3 / divisor,
        "ss_fraction": (shield.stats.processing_time / total
                        if total > 0 else 0.0),
    }


def experiment_fig8a(n_tuples: int = 5000, ratios=PAPER_SS_RATIOS,
                     policy_size: int = 3, seed: int = 13) -> list[dict]:
    """SS vs select vs project cost across sp:tuple ratios (Fig 8a)."""
    rows: list[dict] = []
    for ratio in ratios:
        elements = list(punctuated_stream(
            n_tuples, tuples_per_sp=ratio, policy_size=policy_size,
            accessible_fraction=0.6, seed=seed))
        shield = SecurityShield([QUERY_ROLE])
        timings = run_pipeline(elements, shield)
        rows.append({"ratio": f"1/{ratio}", **timings})
    return rows


def experiment_fig8b(n_tuples: int = 5000, role_counts=PAPER_ROLE_COUNTS,
                     tuples_per_sp: int = 10, policy_size: int = 3,
                     indexed: bool = False, seed: int = 17) -> list[dict]:
    """SS cost as the SS state grows to R roles (Fig 8b).

    The SS state holds the roles of all query specifiers interested in
    the stream.  The default is the paper's baseline SS, which scans
    its state per sp (cost λsp·(NRsp + NR)); ``indexed=True`` applies
    the predicate-index remedy the paper suggests for large states,
    flattening the curve.
    """
    rows: list[dict] = []
    for role_count in role_counts:
        elements = list(punctuated_stream(
            n_tuples, tuples_per_sp=tuples_per_sp, policy_size=policy_size,
            role_pool=max(200, role_count), accessible_fraction=0.6,
            seed=seed))
        state_roles = role_names(role_count, prefix="qr") + [QUERY_ROLE]
        shield = SecurityShield(state_roles, indexed=indexed)
        timings = run_pipeline(elements, shield)
        rows.append({"roles": role_count, **timings})
    return rows
