"""Extension experiment: enforcement cost by policy granularity.

The paper's evaluation fixes tuple-granularity policies ("probably the
most common granularity in mobile environments").  This extension
quantifies what the other granularities of Section III.A cost at the
Security Shield:

* **stream-level** — wildcard DDPs; one decision per segment (the
  uniform fast path);
* **tuple-level** — tuple-id ranges in the DDP; one policy resolution
  per distinct tuple id (cached);
* **attribute-level** — attribute patterns in the DDP; resolution
  intersects authorizations across each tuple's attributes.

Expected shape: stream ≪ tuple < attribute, with the gap shrinking as
more tuples share an sp.
"""

from __future__ import annotations

import random

from repro.core.patterns import literal, numeric_range, one_of
from repro.core.punctuation import SecurityPunctuation
from repro.experiments.fig8 import run_pipeline
from repro.operators.shield import SecurityShield
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.workloads.synthetic import QUERY_ROLE

__all__ = ["GRANULARITIES", "granularity_stream", "experiment_granularity"]

GRANULARITIES = ("stream", "tuple", "attribute")

_ATTRS = ("object_id", "x", "y")


def granularity_stream(granularity: str, n_tuples: int, *,
                       tuples_per_sp: int = 10,
                       accessible_fraction: float = 0.6,
                       seed: int = 0) -> list[StreamElement]:
    """A punctuated stream whose sps use the requested granularity.

    The *effective* access decisions are identical across
    granularities (the same segments are accessible to the query
    role), so measured differences are pure enforcement overhead.
    """
    if granularity not in GRANULARITIES:
        raise ValueError(f"unknown granularity: {granularity!r}")
    rng = random.Random(seed)
    elements: list[StreamElement] = []
    ts = 0.0
    emitted = 0
    while emitted < n_tuples:
        ts += 1.0
        accessible = rng.random() < accessible_fraction
        roles = [QUERY_ROLE, "other"] if accessible else ["other"]
        first_tid = emitted
        last_tid = min(emitted + tuples_per_sp, n_tuples) - 1
        if granularity == "stream":
            sp = SecurityPunctuation.grant(
                roles, ts, stream=literal("synthetic"))
        elif granularity == "tuple":
            sp = SecurityPunctuation.grant(
                roles, ts, stream=literal("synthetic"),
                tuple_id=numeric_range(first_tid, last_tid))
        else:  # attribute granularity: cover all attributes explicitly
            sp = SecurityPunctuation.grant(
                roles, ts, stream=literal("synthetic"),
                tuple_id=numeric_range(first_tid, last_tid),
                attribute=one_of(_ATTRS))
        elements.append(sp)
        for _ in range(min(tuples_per_sp, n_tuples - emitted)):
            ts += 1.0
            elements.append(DataTuple(
                "synthetic", emitted,
                {"object_id": emitted,
                 "x": rng.uniform(0.0, 1000.0),
                 "y": rng.uniform(0.0, 1000.0)},
                ts))
            emitted += 1
    return elements


def experiment_granularity(n_tuples: int = 4000, *,
                           tuples_per_sp: int = 10,
                           seed: int = 53) -> list[dict]:
    """SS per-tuple cost and output per policy granularity."""
    rows: list[dict] = []
    expected_out: int | None = None
    for granularity in GRANULARITIES:
        elements = granularity_stream(
            granularity, n_tuples, tuples_per_sp=tuples_per_sp, seed=seed)
        shield = SecurityShield([QUERY_ROLE])
        timings = run_pipeline(elements, shield)
        tuples_out = shield.stats.tuples_out
        if expected_out is None:
            expected_out = tuples_out
        rows.append({
            "granularity": granularity,
            "ss_ms": timings["ss_ms"],
            "select_ms": timings["select_ms"],
            "tuples_out": tuples_out,
            "same_decisions": tuples_out == expected_out,
        })
    return rows
