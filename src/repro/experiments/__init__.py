"""Experiment drivers regenerating every figure of Section VII."""

from repro.experiments import fig7, fig8, fig9
from repro.experiments.runner import run_all

__all__ = ["fig7", "fig8", "fig9", "run_all"]
