"""Run every Section VII experiment and print the paper's series.

Usage::

    python -m repro.experiments.runner [--quick]

``--quick`` shrinks the workloads (useful for CI); default sizes are
laptop-scale but statistically stable.
"""

from __future__ import annotations

import sys

from repro.experiments import fig7, fig8, fig9
from repro.metrics.charts import bar_chart, grouped_bar_chart
from repro.metrics.reporting import print_table

__all__ = ["run_all", "main"]


def _fig7ab(scale: float) -> None:
    rows = fig7.experiment_fig7ab(n_tuples=int(5000 * scale))
    print_table(
        ("sp:tuple", "mechanism", "output rate (t/ms)", "cost/tuple (ms)"),
        [(r["ratio"], r["mechanism"], r["output_rate"], r["per_tuple_ms"])
         for r in rows],
        title="Figure 7a/7b — enforcement mechanisms vs sp:tuple ratio",
    )


def _fig7cd(scale: float) -> None:
    rows = fig7.experiment_fig7cd(n_tuples=int(4000 * scale))
    print_table(
        ("|R|", "mechanism", "memory (MB)", "cost/100 tuples (ms)"),
        [(r["policy_size"], r["mechanism"], r["memory_mb"],
          r["per_100_tuples_ms"]) for r in rows],
        title="Figure 7c/7d — enforcement mechanisms vs policy size",
    )


def _fig8a(scale: float) -> None:
    rows = fig8.experiment_fig8a(n_tuples=int(5000 * scale))
    print_table(
        ("sp:tuple", "project (ms)", "select (ms)", "ss (ms)"),
        [(r["ratio"], r["project_ms"], r["select_ms"], r["ss_ms"])
         for r in rows],
        title="Figure 8a — SS operator cost vs sp:tuple ratio",
    )


def _fig8b(scale: float) -> None:
    rows = fig8.experiment_fig8b(n_tuples=int(5000 * scale))
    print_table(
        ("roles", "project (ms)", "select (ms)", "ss (ms)", "ss share"),
        [(r["roles"], r["project_ms"], r["select_ms"], r["ss_ms"],
          f"{r['ss_fraction'] * 100:.1f}%") for r in rows],
        title="Figure 8b — SS operator cost vs role count in SS state",
    )


def _fig9(scale: float) -> None:
    rows = fig9.experiment_fig9(n_tuples=int(1500 * scale))
    print_table(
        ("σ_sp", "variant", "total", "join", "sp maint", "tuple maint"),
        [(r["sigma_sp"], r["variant"], r["total_ms"], r["join_ms"],
          r["sp_maintenance_ms"], r["tuple_maintenance_ms"])
         for r in rows],
        title="Figure 9 — SAJoin cost per 100 tuples (ms), by σ_sp",
    )
    groups = {}
    for r in rows:
        groups.setdefault(f"σ_sp = {r['sigma_sp']}", []).append(
            (r["variant"], r["total_ms"]))
    print(grouped_bar_chart(sorted(groups.items()),
                            title="Figure 9, total cost (ms/100 tuples):",
                            unit=" ms"))
    print()


def _granularity(scale: float) -> None:
    from repro.experiments.granularity import experiment_granularity

    rows = experiment_granularity(n_tuples=int(4000 * scale))
    print_table(
        ("granularity", "ss (ms/tuple)", "select (ms/tuple)"),
        [(r["granularity"], r["ss_ms"], r["select_ms"]) for r in rows],
        title="Extension — SS cost by policy granularity",
    )
    print(bar_chart([(r["granularity"], r["ss_ms"]) for r in rows],
                    title="SS cost by granularity (ms/tuple):",
                    unit=" ms"))
    print()


def run_all(scale: float = 1.0) -> None:
    """Run every experiment and print the paper's series."""
    _fig7ab(scale)
    _fig7cd(scale)
    _fig8a(scale)
    _fig8b(scale)
    _fig9(scale)
    _granularity(scale)


def main(argv: list[str] | None = None) -> int:
    """Module entry point (``--quick`` shrinks the workloads)."""
    argv = sys.argv[1:] if argv is None else argv
    scale = 0.2 if "--quick" in argv else 1.0
    run_all(scale)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
