"""Sp-level fault injection with oracle-defined expectations.

Streams in the wild lose, duplicate and reorder elements.  The paper's
model gives each fault a precise expected outcome, and this module
checks the engine against it:

* **Benign faults** — reordering sps *within* one sp-batch and
  duplicating an sp inside its batch.  An sp-batch is one policy
  (union semantics: order-insensitive, idempotent), so the engine run
  over the faulted stream must match the oracle over the *original*
  stream exactly.
* **Consistency faults** — dropping an sp, dropping a whole batch,
  truncating a batch.  These change the policy, so the expected
  behaviour is whatever the oracle computes over the *faulted* stream;
  the engine must track it bit-for-bit (no desync between the engine's
  segment bookkeeping and the denotational semantics).
* **Never-widen** — dropping one positive sp out of a multi-sp batch
  can only shrink that batch's grants.  For monotone plans (no
  stateful δ/G) the faulted oracle's deliveries must therefore be a
  subset of the original's, per (tuple, role) pair.  A violation means
  sp loss *widened* access — the one failure mode an enforcement layer
  must never exhibit.
* **Malformed sps** — corrupted sp text must raise
  :class:`~repro.errors.PunctuationError` at the parse boundary, never
  produce a permissive policy.

The known-bad mutation :func:`disable_denial_by_default` (prepend a
wildcard grant-everything sp to every stream) exists to prove the
harness has teeth: the differ must flag it and shrink it to a tiny
reproducer.  ``tests/verify/test_differential.py`` asserts exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.punctuation import SecurityPunctuation
from repro.errors import PunctuationError
from repro.stream.element import StreamElement
from repro.verify.differ import Mismatch, verify_scenario
from repro.verify.generator import ROLE_POOL, Scenario
from repro.verify.oracle import plan_ops, run_oracle

__all__ = [
    "FaultOutcome",
    "disable_denial_by_default",
    "malformed_sp_texts",
    "run_fault_campaign",
    "run_shard_fault_drill",
]

#: Operators through which shrinking a tuple's role set can only
#: shrink the delivered set (no suppression/aggregation state).
MONOTONE_OPS = {"scan", "shield", "select", "project", "join"}


# -- element-list mutations ---------------------------------------------------

def _sp_batches(elements: "list[StreamElement]") -> "list[tuple[int, int]]":
    """(start, stop) spans of maximal runs of adjacent same-ts sps."""
    spans = []
    start = None
    for index, element in enumerate(elements):
        is_sp = isinstance(element, SecurityPunctuation)
        if is_sp and start is not None \
                and element.ts == elements[start].ts:
            continue
        if start is not None:
            spans.append((start, index))
            start = None
        if is_sp:
            start = index
    if start is not None:
        spans.append((start, len(elements)))
    return spans


def reorder_within_batches(rng: random.Random):
    """Shuffle each sp-batch in place (benign: a batch is a set)."""
    def mutate(sid, elements):
        out = list(elements)
        for start, stop in _sp_batches(out):
            chunk = out[start:stop]
            rng.shuffle(chunk)
            out[start:stop] = chunk
        return out
    return mutate


def duplicate_one_sp(rng: random.Random):
    """Duplicate one sp next to itself (benign: union is idempotent)."""
    def mutate(sid, elements):
        indexes = [i for i, e in enumerate(elements)
                   if isinstance(e, SecurityPunctuation)]
        if not indexes:
            return list(elements)
        index = rng.choice(indexes)
        return (list(elements[:index + 1]) + [elements[index]]
                + list(elements[index + 1:]))
    return mutate


def drop_one_sp(rng: random.Random):
    """Remove one random sp (consistency fault)."""
    def mutate(sid, elements):
        indexes = [i for i, e in enumerate(elements)
                   if isinstance(e, SecurityPunctuation)]
        if not indexes:
            return list(elements)
        index = rng.choice(indexes)
        return list(elements[:index]) + list(elements[index + 1:])
    return mutate


def drop_one_batch(rng: random.Random):
    """Remove one whole sp-batch (consistency fault)."""
    def mutate(sid, elements):
        spans = _sp_batches(list(elements))
        if not spans:
            return list(elements)
        start, stop = rng.choice(spans)
        return list(elements[:start]) + list(elements[stop:])
    return mutate


def truncate_one_batch(rng: random.Random):
    """Keep only the first sp of one multi-sp batch (consistency fault)."""
    def mutate(sid, elements):
        spans = [(a, b) for a, b in _sp_batches(list(elements)) if b - a > 1]
        if not spans:
            return list(elements)
        start, stop = rng.choice(spans)
        return list(elements[:start + 1]) + list(elements[stop:])
    return mutate


def drop_positive_from_batch(scenario: Scenario, rng: random.Random):
    """Pick a positive sp inside a multi-sp batch and drop it.

    Returns ``(mutator, found)`` — ``found`` is ``False`` when no
    stream has such a batch (the never-widen check is then skipped).
    """
    candidates: "list[tuple[str, int]]" = []
    for sid, elements in scenario.decoded().items():
        for start, stop in _sp_batches(elements):
            if stop - start < 2:
                continue
            for index in range(start, stop):
                if elements[index].is_positive:
                    candidates.append((sid, index))
    if not candidates:
        return None, False
    target_sid, target_index = rng.choice(candidates)

    def mutate(sid, elements):
        if sid != target_sid:
            return list(elements)
        return (list(elements[:target_index])
                + list(elements[target_index + 1:]))
    return mutate, True


def disable_denial_by_default():
    """The known-bad engine mutation: grant everyone everything first.

    Prepending a wildcard grant of the full role pool at ts=-1 to every
    stream simulates an engine that forgets denial-by-default: tuples
    arriving before any real sp become visible.  The differ (engine
    over mutated streams vs oracle over the originals) must flag it.
    """
    def mutate(sid, elements):
        grant = SecurityPunctuation.grant(ROLE_POOL, -1.0, provider=sid)
        return [grant] + list(elements)
    return mutate


# -- malformed sp text --------------------------------------------------------

def malformed_sp_texts(sp: SecurityPunctuation) -> "list[str]":
    """Corruptions of one sp's text form; all must fail to parse."""
    text = sp.to_text()
    return [
        text[1:],                       # lost opening bracket
        text[:-1],                      # truncated mid-element
        text.replace("|", "!", 1),      # separator corrupted
        text.replace(f"| {sp.sign.value} |", "| ? |"),  # bad sign
        "<" + "|".join(["*"] * 9) + ">",  # wrong field count
        "",
    ]


# -- shard worker faults ------------------------------------------------------

def run_shard_fault_drill(scenario: Scenario,
                          *, hang_timeout: float = 1.0
                          ) -> "list[Mismatch]":
    """Kill and hang a shard worker mid-run; the run must fail closed.

    For each fault kind the partitioned executor
    (:mod:`repro.engine.sharded`) is driven over the scenario with one
    worker sabotaged.  Expectations:

    * :class:`~repro.errors.ShardExecutionError` is raised — no result
      dict (and so no tuple that never met its shield) is ever
      returned;
    * a ``health.alert`` span reaches the coordinator's tracer;
    * the pool drains bounded: no worker process outlives the run.
    """
    import multiprocessing

    from repro.engine.dsms import DSMS
    from repro.engine.sharded import run_sharded
    from repro.errors import ShardExecutionError
    from repro.observability import Observability
    from repro.stream.schema import StreamSchema
    from repro.verify.differ import expr_from_spec

    mismatches: "list[Mismatch]" = []
    descr = scenario.describe()
    for kind, timeout in (("crash", 30.0), ("hang", hang_timeout)):
        label = f"fault:shard-{kind}"
        observability = Observability.in_memory()
        dsms = DSMS(observability=observability)
        for sid, spec in scenario.streams.items():
            dsms.register_stream(
                StreamSchema(sid, tuple(spec["attributes"])),
                scenario.decoded()[sid])
        for name, query in scenario.queries.items():
            dsms.register_query(
                name, expr_from_spec(query["plan"]),
                roles=frozenset(query["roles"]), auto_shield=False)
        delivered = None
        try:
            delivered = run_sharded(dsms, n_shards=2, timeout=timeout,
                                    faults={0: kind})
        except ShardExecutionError:
            pass
        except Exception as exc:  # noqa: BLE001 — wrong failure shape
            mismatches.append(Mismatch(
                descr, label, "*", "error",
                f"expected ShardExecutionError, got "
                f"{type(exc).__name__}: {exc}"))
        if delivered is not None:
            total = sum(len(r.tuples) for r in delivered.values())
            mismatches.append(Mismatch(
                descr, label, "*", "fail-open",
                f"worker {kind} returned results "
                f"({total} tuples) instead of failing closed"))
        tracer = observability.tracer
        alerts = tracer.events("health.alert")
        if not alerts:
            mismatches.append(Mismatch(
                descr, label, "*", "no-alert",
                f"worker {kind} raised no health.alert span"))
        leaked = [p for p in multiprocessing.active_children()
                  if p.is_alive()]
        if leaked:
            for proc in leaked:  # pragma: no cover - cleanup on failure
                proc.terminate()
                proc.join(timeout=5.0)
            mismatches.append(Mismatch(
                descr, label, "*", "leak",
                f"{len(leaked)} worker process(es) outlived the "
                f"{kind} drill"))
    return mismatches


# -- the campaign -------------------------------------------------------------

@dataclass
class FaultOutcome:
    """Result of one fault-injection campaign over one scenario."""

    scenario: str
    faults_run: int = 0
    mismatches: "list[Mismatch]" = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.mismatches is None:
            self.mismatches = []

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _strip_roles(sig: tuple) -> "tuple[tuple, str]":
    sid, tid, ts, values, roles = sig
    return (sid, tid, ts, values), roles


def run_fault_campaign(scenario: Scenario,
                       rng: random.Random) -> FaultOutcome:
    """Inject each fault class into one scenario and check expectations."""
    outcome = FaultOutcome(scenario.describe())
    original_oracle = run_oracle(scenario.decoded(), scenario.queries)

    # Benign faults: engine(faulted) must equal oracle(original).
    for label, mutator in (
            ("fault:reorder-batch", reorder_within_batches(rng)),
            ("fault:duplicate-sp", duplicate_one_sp(rng))):
        outcome.faults_run += 1
        faulted = scenario.mutate_elements(mutator)
        report = verify_scenario(faulted, include_baselines=False,
                                 oracle=original_oracle)
        for mismatch in report.mismatches:
            mismatch.config = f"{label}/{mismatch.config}"
            outcome.mismatches.append(mismatch)

    # Consistency faults: engine(faulted) must equal oracle(faulted).
    for label, mutator in (
            ("fault:drop-sp", drop_one_sp(rng)),
            ("fault:drop-batch", drop_one_batch(rng)),
            ("fault:truncate-batch", truncate_one_batch(rng))):
        outcome.faults_run += 1
        faulted = scenario.mutate_elements(mutator)
        report = verify_scenario(faulted, include_baselines=False)
        for mismatch in report.mismatches:
            mismatch.config = f"{label}/{mismatch.config}"
            outcome.mismatches.append(mismatch)

    # Never-widen: losing a grant out of a batch must not widen access.
    monotone = all(plan_ops(q["plan"]) <= MONOTONE_OPS
                   for q in scenario.queries.values())
    if monotone:
        mutator, found = drop_positive_from_batch(scenario, rng)
        if found:
            outcome.faults_run += 1
            faulted = scenario.mutate_elements(mutator)
            faulted_oracle = run_oracle(faulted.decoded(), faulted.queries)
            for name in scenario.queries:
                allowed = set()
                for sig in original_oracle.delivered[name]:
                    key, roles = _strip_roles(sig)
                    for role in roles:
                        allowed.add((key, role))
                for sig in faulted_oracle.delivered[name]:
                    key, roles = _strip_roles(sig)
                    for role in roles:
                        if (key, role) not in allowed:
                            outcome.mismatches.append(Mismatch(
                                scenario.describe(), "fault:drop-grant",
                                name, "widened",
                                f"role {role!r} gained access to "
                                f"{key[0]}:{key[1]}@{key[2]} after sp loss"))

    # Shard worker faults: a dying or hung worker must abort the
    # sharded run fail-closed — error raised, health.alert emitted,
    # pool drained — never deliver partially-enforced results.
    outcome.faults_run += 2
    outcome.mismatches.extend(run_shard_fault_drill(scenario))

    # Malformed sp text must die at the parse boundary.
    for elements in scenario.decoded().values():
        for element in elements:
            if isinstance(element, SecurityPunctuation):
                outcome.faults_run += 1
                for bad in malformed_sp_texts(element):
                    try:
                        SecurityPunctuation.parse(bad)
                    except PunctuationError:
                        continue
                    outcome.mismatches.append(Mismatch(
                        scenario.describe(), "fault:malformed-sp", "*",
                        "parsed", f"corrupt sp text parsed: {bad!r}"))
                break  # one sp per stream is enough
    return outcome
