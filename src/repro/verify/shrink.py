"""Greedy minimization of failing scenarios.

When the differ finds a mismatch, the raw scenario is noise: dozens of
stream elements, nested plans, multiple queries.  :func:`shrink_scenario`
reduces it while preserving the failure — delta-debugging over the
scenario structure:

1. drop whole queries (at least one must remain);
2. simplify plans (replace any operator with one of its inputs,
   dropping streams that become unreferenced);
3. remove stream elements in shrinking chunks (ddmin), then one by one.

Every candidate is re-checked with the caller's ``failing`` predicate,
so the result is 1-minimal with respect to these operations: removing
any single remaining element or plan node makes the failure disappear.
Minimized cases serialize to JSON and are committed under
``tests/verify/cases/`` as permanent regression tests.
"""

from __future__ import annotations

import os
from typing import Callable, Iterator

from repro.verify.generator import Scenario

__all__ = ["shrink_scenario", "save_case", "load_case", "load_cases"]


# -- plan helpers -------------------------------------------------------------

def _plan_streams(spec: dict) -> set[str]:
    if spec["op"] == "scan":
        return {spec["stream"]}
    out: set[str] = set()
    for key in ("input", "left", "right"):
        child = spec.get(key)
        if child is not None:
            out |= _plan_streams(child)
    return out


def _simplified_plans(spec: dict) -> Iterator[dict]:
    """Every plan obtained by replacing one node with one of its inputs."""
    for key in ("input", "left", "right"):
        child = spec.get(key)
        if child is None:
            continue
        yield child  # hoist the child over this node
        for simplified in _simplified_plans(child):
            copy = dict(spec)
            copy[key] = simplified
            yield copy


# -- candidate generation -----------------------------------------------------

def _without_query(scenario: Scenario, name: str) -> Scenario:
    queries = {n: q for n, q in scenario.queries.items() if n != name}
    candidate = scenario.with_queries(queries)
    return _prune_streams(candidate)


def _prune_streams(scenario: Scenario) -> Scenario:
    """Drop streams no remaining plan scans."""
    used: set[str] = set()
    for query in scenario.queries.values():
        used |= _plan_streams(query["plan"])
    streams = {sid: spec for sid, spec in scenario.streams.items()
               if sid in used}
    return scenario.with_streams(streams)


def _with_plan(scenario: Scenario, name: str, plan: dict) -> Scenario:
    queries = dict(scenario.queries)
    queries[name] = {"roles": queries[name]["roles"], "plan": plan}
    return _prune_streams(scenario.with_queries(queries))


def _without_elements(scenario: Scenario, sid: str,
                      start: int, stop: int) -> Scenario:
    streams = {s: dict(spec) for s, spec in scenario.streams.items()}
    lines = list(streams[sid]["elements"])
    del lines[start:stop]
    streams[sid] = {"attributes": list(streams[sid]["attributes"]),
                    "elements": lines}
    return scenario.with_streams(streams)


# -- the shrinker -------------------------------------------------------------

def shrink_scenario(scenario: Scenario,
                    failing: Callable[[Scenario], bool],
                    max_rounds: int = 20) -> Scenario:
    """Smallest scenario (under the steps above) that still fails.

    ``failing`` must return ``True`` for ``scenario`` itself; candidate
    evaluations that raise are treated as not failing (a crash from an
    over-aggressive reduction must not hijack the shrink).
    """

    def still_fails(candidate: Scenario) -> bool:
        if not candidate.queries or not candidate.streams:
            return False
        try:
            return failing(candidate)
        except Exception:  # noqa: BLE001 — invalid reductions are skipped
            return False

    current = scenario
    for _ in range(max_rounds):
        changed = False

        # 1. Drop queries.
        for name in list(current.queries):
            if len(current.queries) <= 1:
                break
            candidate = _without_query(current, name)
            if still_fails(candidate):
                current, changed = candidate, True

        # 2. Simplify plans.
        for name in list(current.queries):
            progress = True
            while progress:
                progress = False
                for plan in _simplified_plans(current.queries[name]["plan"]):
                    candidate = _with_plan(current, name, plan)
                    if still_fails(candidate):
                        current, changed, progress = candidate, True, True
                        break

        # 3. Remove stream elements, largest chunks first.
        for sid in list(current.streams):
            size = len(current.streams[sid]["elements"])
            chunk = max(size // 2, 1)
            while chunk >= 1:
                start = 0
                while start < len(current.streams[sid]["elements"]):
                    stop = start + chunk
                    candidate = _without_elements(current, sid, start, stop)
                    if still_fails(candidate):
                        current, changed = candidate, True
                        # retry same offset: the next chunk slid left
                    else:
                        start = stop
                chunk //= 2

        if not changed:
            break
    return current


# -- persistence --------------------------------------------------------------

def save_case(scenario: Scenario, directory: str, name: str) -> str:
    """Write a minimized reproducer to ``directory/name.json``."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(scenario.to_json())
        handle.write("\n")
    return path


def load_case(path: str) -> Scenario:
    """Load one committed reproducer case from its JSON file."""
    with open(path, encoding="utf-8") as handle:
        return Scenario.from_json(handle.read())


def load_cases(directory: str) -> "list[tuple[str, Scenario]]":
    """All committed cases in a directory, sorted by file name."""
    if not os.path.isdir(directory):
        return []
    out = []
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".json"):
            out.append((entry, load_case(os.path.join(directory, entry))))
    return out
