"""Seeded random scenario generation for the differential harness.

A *scenario* is a fully serializable description of one verification
case: input streams (as wire-format lines, interleaving sps and
tuples), query plan specs (plain nested dicts — the oracle interprets
them directly, the differ compiles them to engine expressions) and the
knob settings that produced them.

Determinism discipline: every random draw comes from one
``random.Random(f"sp-verify:{seed}:{index}")`` instance — no wall
clock, no global random state — so ``repro verify --seed N`` is
byte-reproducible and every scenario can be regenerated from its
``(seed, index)`` pair alone.

Generated shield predicates always *contain* the query's roles
(conjunct = query roles ∪ extras).  This matches how shields arise in
practice (they guard the query specifier's roles) and is exactly the
condition under which Table II's Rule 3 two-sided push stays
delivery-equivalent — see docs/VERIFICATION.md.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.patterns import ANY, literal, one_of
from repro.core.punctuation import SecurityPunctuation, Sign
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.stream.wire import decode_element, encode_element

__all__ = ["Scenario", "generate_scenario", "ROLE_POOL", "SHAPES"]

#: Small role pool: overlaps between granted roles, denials and query
#: roles are frequent, which is where the interesting semantics live.
ROLE_POOL = ("R1", "R2", "R3", "R4")

#: Scenario shapes with generation weights.
SHAPES = (
    ("scan", 2),
    ("select", 2),
    ("project", 3),
    ("dupelim", 2),
    ("groupby", 2),
    ("join", 4),
    ("join_deep", 2),
    ("join3", 1),
    ("multi_query", 2),
    ("baseline", 3),
)


@dataclass
class Scenario:
    """One serializable verification case."""

    seed: int
    index: int
    shape: str
    knobs: dict
    #: stream id -> {"attributes": [...], "elements": [wire lines]}
    streams: dict
    #: query name -> {"roles": [...], "plan": spec}
    queries: dict
    note: str = ""

    def decoded(self) -> "dict[str, list[StreamElement]]":
        """Fresh decoded elements per stream (registration order)."""
        return {sid: [decode_element(line) for line in spec["elements"]]
                for sid, spec in self.streams.items()}

    def element_count(self) -> int:
        return sum(len(spec["elements"]) for spec in self.streams.values())

    def describe(self) -> str:
        return (f"seed={self.seed} index={self.index} shape={self.shape} "
                f"streams={len(self.streams)} "
                f"elements={self.element_count()} "
                f"queries={len(self.queries)}")

    # -- JSON round trip ------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": 1,
            "seed": self.seed,
            "index": self.index,
            "shape": self.shape,
            "knobs": self.knobs,
            "streams": self.streams,
            "queries": self.queries,
            "note": self.note,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            seed=data.get("seed", 0),
            index=data.get("index", 0),
            shape=data.get("shape", "custom"),
            knobs=data.get("knobs", {}),
            streams=data["streams"],
            queries=data["queries"],
            note=data.get("note", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def with_streams(self, streams: dict) -> "Scenario":
        return Scenario(self.seed, self.index, self.shape, self.knobs,
                        streams, self.queries, self.note)

    def with_queries(self, queries: dict) -> "Scenario":
        return Scenario(self.seed, self.index, self.shape, self.knobs,
                        self.streams, queries, self.note)

    def mutate_elements(
        self,
        mutator: "Callable[[str, list[StreamElement]], list[StreamElement]]",
    ) -> "Scenario":
        """Clone with every stream's elements passed through ``mutator``."""
        streams = {}
        for sid, spec in self.streams.items():
            elements = mutator(sid, [decode_element(line)
                                     for line in spec["elements"]])
            streams[sid] = {
                "attributes": list(spec["attributes"]),
                "elements": [encode_element(e) for e in elements],
            }
        return self.with_streams(streams)

    def baseline_compatible(self) -> bool:
        """Whether the two baselines can express this scenario.

        Both baselines model flat stream-level enforcement: a single
        stream, pure-scan plans and wildcard-DDP sps (the tuple- and
        attribute-granular cases are exactly what they cannot express
        without a query processor).
        """
        if len(self.streams) != 1:
            return False
        for query in self.queries.values():
            if query["plan"]["op"] != "scan":
                return False
        for spec in self.streams.values():
            for line in spec["elements"]:
                element = decode_element(line)
                if isinstance(element, SecurityPunctuation):
                    ddp = element.ddp
                    if not (ddp.tuple_id.is_wildcard()
                            and ddp.attribute.is_wildcard()):
                        return False
        return True


# -- stream generation -------------------------------------------------------

@dataclass
class _StreamState:
    sid: str
    attributes: tuple
    elements: list = field(default_factory=list)
    ts: float = 0.0
    next_tid: int = 0


def _draw_roles(rng: random.Random, k_max: int = 3) -> list[str]:
    k = rng.randint(1, min(k_max, len(ROLE_POOL)))
    return sorted(rng.sample(ROLE_POOL, k))


def _gen_sp_batch(rng: random.Random, state: _StreamState,
                  knobs: dict, upcoming_tids: list) -> None:
    """Append one sp-batch (all sps share a timestamp) to the stream."""
    state.ts += round(rng.uniform(0.5, 2.0), 2)
    batch_ts = state.ts
    size = rng.randint(1, knobs["sp_batch_max"])
    for position in range(size):
        stream_pattern = (literal(state.sid)
                          if rng.random() < 0.8 else ANY)
        tuple_pattern = ANY
        attribute_pattern = ANY
        if rng.random() < knobs["p_tuple_scoped"] and upcoming_tids:
            sample = rng.sample(upcoming_tids,
                                rng.randint(1, len(upcoming_tids)))
            tuple_pattern = one_of(sorted(sample))
        if rng.random() < knobs["p_attr_scoped"]:
            attribute_pattern = literal(rng.choice(state.attributes))
        negative = (position > 0 or size == 1) \
            and rng.random() < knobs["p_negative"]
        sp = SecurityPunctuation.grant(
            _draw_roles(rng), batch_ts,
            stream=stream_pattern, tuple_id=tuple_pattern,
            attribute=attribute_pattern,
            immutable=rng.random() < knobs["p_immutable"],
            provider=state.sid,
        )
        if negative:
            sp = sp.with_sign(Sign.NEGATIVE)
        state.elements.append(sp)


def _gen_tuples(rng: random.Random, state: _StreamState, count: int,
                share_batch_ts: bool) -> list:
    tids = []
    for position in range(count):
        if not (share_batch_ts and position == 0):
            state.ts += round(rng.uniform(0.5, 1.5), 2)
        values = {}
        for attr in state.attributes:
            if attr.startswith("k"):
                values[attr] = rng.randint(0, 2)
            elif attr.startswith("a"):
                values[attr] = rng.randint(0, 4)
            else:
                values[attr] = rng.randint(0, 9)
        tid = state.next_tid
        state.next_tid += 1
        tids.append(tid)
        state.elements.append(
            DataTuple(state.sid, tid, values, state.ts))
    return tids


def _gen_stream(rng: random.Random, sid: str, attributes: tuple,
                knobs: dict, *, wildcard_only: bool = False) -> dict:
    state = _StreamState(sid, attributes, ts=rng.choice([0.0, 0.25, 0.5]))
    local = dict(knobs)
    if wildcard_only:
        local["p_tuple_scoped"] = 0.0
        local["p_attr_scoped"] = 0.0
    # Denial-by-default prefix: tuples before any sp.
    if rng.random() < 0.3:
        _gen_tuples(rng, state, rng.randint(1, 2), share_batch_ts=False)
    n_segments = rng.randint(2, knobs["segments_max"])
    for _ in range(n_segments):
        n_tuples = rng.randint(0, local["tuples_per_sp_max"])
        upcoming = list(range(state.next_tid, state.next_tid + n_tuples))
        _gen_sp_batch(rng, state, local, upcoming)
        if rng.random() < 0.15:
            # Empty segment: the next batch overrides immediately.
            continue
        share = rng.random() < 0.2
        _gen_tuples(rng, state, n_tuples, share_batch_ts=share)
    # Trailing sp-batch with no tuples.
    if rng.random() < 0.3:
        _gen_sp_batch(rng, state, local, [])
    return {
        "attributes": list(attributes),
        "elements": [encode_element(e) for e in state.elements],
    }


# -- plan specs ---------------------------------------------------------------

def _scan(sid: str) -> dict:
    return {"op": "scan", "stream": sid}


def _shield_spec(rng: random.Random, qroles: list, n_max: int = 2) -> list:
    """Conjuncts, each a superset of the query's roles."""
    conjuncts = []
    for _ in range(rng.randint(1, n_max)):
        extras = rng.sample(ROLE_POOL, rng.randint(0, 2))
        conjuncts.append(sorted(set(qroles) | set(extras)))
    return conjuncts


def _maybe_shield(rng: random.Random, spec: dict, qroles: list,
                  p: float = 0.6) -> dict:
    if rng.random() < p:
        return {"op": "shield", "input": spec,
                "predicates": _shield_spec(rng, qroles)}
    return spec


def _select_spec(rng: random.Random, attributes: tuple) -> dict:
    return {
        "attribute": rng.choice(attributes),
        "op": rng.choice(["=", "!=", "<", "<=", ">", ">="]),
        "value": rng.randint(0, 6),
    }


def _window(rng: random.Random) -> float:
    return float(rng.choice([4, 8, 16, 40]))


# -- whole scenarios ----------------------------------------------------------

def _knobs(rng: random.Random) -> dict:
    return {
        "tuples_per_sp_max": rng.randint(1, 6),
        "sp_batch_max": rng.randint(1, 3),
        "segments_max": rng.randint(3, 8),
        "p_negative": rng.choice([0.0, 0.25, 0.5]),
        "p_tuple_scoped": rng.choice([0.0, 0.3]),
        "p_attr_scoped": rng.choice([0.0, 0.3]),
        "p_immutable": rng.choice([0.0, 0.3]),
    }


def _stream_attrs(i: int) -> tuple:
    # Globally distinct attribute names: merged join tuples never
    # prefix-rename, so result values stay comparable across plans.
    return (f"a{i}", f"b{i}", f"k{i}")


def generate_scenario(seed: int, index: int) -> Scenario:
    """The ``index``-th scenario of fuzz run ``seed`` (pure function)."""
    rng = random.Random(f"sp-verify:{seed}:{index}")
    knobs = _knobs(rng)
    shapes, weights = zip(*SHAPES)
    shape = rng.choices(shapes, weights=weights, k=1)[0]

    streams: dict = {}
    queries: dict = {}
    qroles = sorted(rng.sample(ROLE_POOL, rng.randint(1, 2)))

    def add_stream(i: int, wildcard_only: bool = False) -> str:
        sid = f"s{i}"
        streams[sid] = _gen_stream(rng, sid, _stream_attrs(i), knobs,
                                   wildcard_only=wildcard_only)
        return sid

    if shape == "scan":
        sid = add_stream(0)
        plan = _maybe_shield(rng, _scan(sid), qroles, p=0.5)
    elif shape == "select":
        sid = add_stream(0)
        plan = _maybe_shield(rng, {
            "op": "select", "input": _maybe_shield(rng, _scan(sid), qroles),
            "condition": _select_spec(rng, _stream_attrs(0)),
        }, qroles, p=0.4)
    elif shape == "project":
        sid = add_stream(0)
        attrs = _stream_attrs(0)
        kept = sorted(rng.sample(attrs, rng.randint(1, 2)))
        plan = _maybe_shield(rng, {
            "op": "project", "input": _maybe_shield(rng, _scan(sid), qroles),
            "attributes": kept,
        }, qroles, p=0.4)
    elif shape == "dupelim":
        sid = add_stream(0)
        attrs = _stream_attrs(0)
        plan = _maybe_shield(rng, {
            "op": "dupelim", "input": _maybe_shield(rng, _scan(sid), qroles),
            "window": _window(rng),
            "attributes": ([rng.choice(attrs)]
                           if rng.random() < 0.7 else None),
        }, qroles, p=0.4)
    elif shape == "groupby":
        sid = add_stream(0)
        plan = _maybe_shield(rng, {
            "op": "groupby", "input": _maybe_shield(rng, _scan(sid), qroles),
            "key": rng.choice([None, f"a{0}"]),
            "agg": rng.choice(["sum", "count", "min", "max"]),
            "attribute": f"b{0}",
            "window": _window(rng),
        }, qroles, p=0.4)
    elif shape in ("join", "join_deep"):
        left_sid = add_stream(0)
        right_sid = add_stream(1)
        left: dict = _scan(left_sid)
        right: dict = _scan(right_sid)
        if shape == "join_deep":
            if rng.random() < 0.5:
                left = {"op": "select", "input": left,
                        "condition": _select_spec(rng, _stream_attrs(0))}
            left = _maybe_shield(rng, left, qroles, p=0.5)
            right = _maybe_shield(rng, right, qroles, p=0.5)
        plan = _maybe_shield(rng, {
            "op": "join", "left": left, "right": right,
            "left_on": "k0", "right_on": "k1",
            "window": _window(rng),
        }, qroles, p=0.6)
    elif shape == "join3":
        add_stream(0)
        add_stream(1)
        add_stream(2)
        inner = {"op": "join", "left": _scan("s0"), "right": _scan("s1"),
                 "left_on": "k0", "right_on": "k1",
                 "window": _window(rng)}
        plan = _maybe_shield(rng, {
            "op": "join", "left": inner, "right": _scan("s2"),
            "left_on": "k0", "right_on": "k2",
            "window": _window(rng),
        }, qroles, p=0.6)
    elif shape == "multi_query":
        sid = add_stream(0)
        plan = _maybe_shield(rng, _scan(sid), qroles, p=0.5)
        other_roles = sorted(rng.sample(ROLE_POOL, rng.randint(1, 2)))
        queries["q1"] = {
            "roles": other_roles,
            "plan": _maybe_shield(rng, {
                "op": "select", "input": _scan(sid),
                "condition": _select_spec(rng, _stream_attrs(0)),
            }, other_roles, p=0.5),
        }
    else:  # baseline
        sid = add_stream(0, wildcard_only=True)
        plan = _scan(sid)

    queries["q0"] = {"roles": qroles, "plan": plan}
    # Registration order must be deterministic: rebuild sorted.
    queries = {name: queries[name] for name in sorted(queries)}
    return Scenario(seed=seed, index=index, shape=shape, knobs=knobs,
                    streams=streams, queries=queries)
