"""The differential runner: every engine configuration vs the oracle.

For one scenario this module runs the full cross product of engine
configurations — element-wise vs segment-batched vs fused-columnar
execution, NL vs SPIndex join, optimizer off / per-query / workload —
plus an audited run and (where expressible) the two Section I.C
baselines, and diffs each against
:func:`repro.verify.oracle.run_oracle`:

* the multiset of delivered tuples per query, each tagged with its
  resolved role set (so a policy that *widens* is a mismatch even when
  the tuple would have been delivered anyway);
* the delivery-shield denial count in the audit trail;
* the executor's total drop counter across the element-wise, batched
  and columnar runs of the same plan.

Engines consume the scenario's streams through freshly decoded wire
elements, so no state leaks between configurations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.algebra.expressions import (DupElimExpr, GroupByExpr, JoinExpr,
                                       LogicalExpr, ProjectExpr, ScanExpr,
                                       SelectExpr, ShieldExpr)
from repro.baselines.store_and_probe import PolicyTable
from repro.baselines.tuple_embedded import embed_policies
from repro.core.bitmap import RoleSet
from repro.core.punctuation import SecurityPunctuation
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.observability import Observability
from repro.operators.conditions import Comparison
from repro.stream.element import StreamElement
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple
from repro.verify.generator import Scenario
from repro.verify.oracle import (NaiveTracker, OracleOutcome, resolve_batch,
                                 run_oracle, signature)

__all__ = [
    "EngineConfig",
    "EngineOutcome",
    "Mismatch",
    "ScenarioReport",
    "configs_for",
    "expr_from_spec",
    "run_engine",
    "run_baseline_store_probe",
    "run_baseline_tuple_embedded",
    "verify_scenario",
]

ElementMutator = Callable[[str, "list[StreamElement]"], "list[StreamElement]"]


# -- spec -> logical expression ----------------------------------------------

def expr_from_spec(spec: dict, join_variant: str = "nl") -> LogicalExpr:
    """Compile a scenario plan spec into the engine's logical algebra."""
    op = spec["op"]
    if op == "scan":
        return ScanExpr(spec["stream"])
    if op == "shield":
        return ShieldExpr(expr_from_spec(spec["input"], join_variant),
                          tuple(frozenset(p) for p in spec["predicates"]))
    if op == "select":
        cond = spec["condition"]
        if "udf" in cond:
            from repro.operators.udfs import named_udf

            return SelectExpr(expr_from_spec(spec["input"], join_variant),
                              named_udf(cond["udf"]))
        return SelectExpr(
            expr_from_spec(spec["input"], join_variant),
            Comparison(cond["attribute"], cond["op"], cond["value"]))
    if op == "project":
        return ProjectExpr(expr_from_spec(spec["input"], join_variant),
                           tuple(spec["attributes"]))
    if op == "dupelim":
        attrs = spec.get("attributes")
        return DupElimExpr(expr_from_spec(spec["input"], join_variant),
                           spec["window"],
                           tuple(attrs) if attrs else None)
    if op == "groupby":
        return GroupByExpr(expr_from_spec(spec["input"], join_variant),
                           spec.get("key"), spec["agg"], spec["attribute"],
                           spec["window"])
    if op == "join":
        return JoinExpr(expr_from_spec(spec["left"], join_variant),
                        expr_from_spec(spec["right"], join_variant),
                        spec["left_on"], spec["right_on"], spec["window"],
                        variant=join_variant)
    raise ValueError(f"unknown plan op: {op!r}")


def _has_join(spec: dict) -> bool:
    if spec["op"] == "join":
        return True
    return any(_has_join(spec[key]) for key in ("input", "left", "right")
               if spec.get(key) is not None)


# -- engine configurations ----------------------------------------------------

@dataclass(frozen=True)
class EngineConfig:
    """One way to run the engine over a scenario."""

    label: str
    batching: bool
    join_variant: str = "nl"
    level: str = "none"
    audit: bool = False
    #: Columnar tier: segment-batched execution with fused
    #: shield/select/project chains over column batches.
    columnar: bool = False
    #: Causal-tracing tier: run under ``Observability.with_tracing()``
    #: so sampling, provenance records and op spans are live.  Tracing
    #: must never change what is delivered — this config proves it.
    traced: bool = False
    #: Sharded tier: run through ``DSMS.run(shards=n_shards)`` — the
    #: partitioned multi-process executor — instead of in-process.
    #: ``0`` keeps the single-process path.  Sharding must never change
    #: what is delivered, denied or dropped; these configs prove it
    #: (including ``n_shards=1``, which exercises the partition/merge
    #: machinery with a single worker).
    n_shards: int = 0

    @property
    def mode(self) -> str:
        """The execution mode axis: elementwise / batched / columnar."""
        if self.traced:
            base = "traced"
        elif self.columnar:
            base = "columnar"
        else:
            base = "batched" if self.batching else "elementwise"
        if self.n_shards:
            # Distinct mode label per shard count: the cross-mode drop
            # consistency check then also proves sharded total drops
            # equal every single-process mode's.
            return f"sharded{self.n_shards}-{base}"
        return base


def configs_for(scenario: Scenario) -> list[EngineConfig]:
    """The engine configurations a scenario is checked under."""
    join = any(_has_join(q["plan"]) for q in scenario.queries.values())
    variants = ("nl", "index") if join else ("nl",)
    levels = ["none", "per_query"]
    if len(scenario.queries) > 1:
        levels.append("workload")
    configs = []
    for variant in variants:
        for level in levels:
            for batching, columnar in ((False, False), (True, False),
                                       (True, True)):
                mode = ("columnar" if columnar
                        else "batched" if batching else "elementwise")
                configs.append(EngineConfig(
                    label=f"{mode}/{variant}/{level}",
                    batching=batching, join_variant=variant, level=level,
                    columnar=columnar))
    configs.append(EngineConfig(label="audited/nl/none", batching=False,
                                join_variant="nl", level="none", audit=True))
    configs.append(EngineConfig(label="traced/nl/none", batching=True,
                                join_variant="nl", level="none", traced=True))
    # Sharded axis: the partitioned multi-process executor at 1, 2 and
    # 4 workers, plus one columnar, one audited and (with a join in the
    # workload) one index-join sharded run — every merge path crossed
    # with every execution tier it composes with.
    for n_shards in (1, 2, 4):
        configs.append(EngineConfig(
            label=f"sharded{n_shards}/nl/none", batching=True,
            join_variant="nl", level="none", n_shards=n_shards))
    if join:
        configs.append(EngineConfig(
            label="sharded2/index/none", batching=True,
            join_variant="index", level="none", n_shards=2))
    configs.append(EngineConfig(
        label="sharded2-columnar/nl/none", batching=True,
        join_variant="nl", level="none", columnar=True, n_shards=2))
    configs.append(EngineConfig(
        label="sharded2-audited/nl/none", batching=False,
        join_variant="nl", level="none", audit=True, n_shards=2))
    return configs


# -- engine execution ---------------------------------------------------------

@dataclass
class EngineOutcome:
    """What one engine run produced, in oracle-comparable form."""

    delivered: "dict[str, Counter]" = field(default_factory=dict)
    #: Delivery-shield drop counts from the audit trail (audited runs).
    denied: "dict[str, int] | None" = None
    total_drops: int = 0


def _decode_sink(elements: Iterable[StreamElement]) -> Counter:
    """Resolve a query sink against the sps the engine emitted with it."""
    tracker = NaiveTracker()
    sigs: Counter = Counter()
    for element in elements:
        if isinstance(element, SecurityPunctuation):
            tracker.observe(element)
            continue
        roles = resolve_batch(tracker.governing(), element)
        sigs[signature(element, roles)] += 1
    return sigs


def run_engine(scenario: Scenario, config: EngineConfig,
               element_mutator: ElementMutator | None = None) -> EngineOutcome:
    """Run one engine configuration over a scenario."""
    if config.audit:
        observability: Observability | None = Observability.in_memory()
    elif config.traced:
        # Full-rate sampling: every trace pays the provenance cost, so
        # any result-changing interference tracing could cause is
        # maximally exposed.
        observability = Observability.with_tracing(sample=1.0)
    else:
        observability = None
    dsms = DSMS(observability=observability)
    for sid, spec in scenario.streams.items():
        elements = scenario.decoded()[sid]
        if element_mutator is not None:
            elements = element_mutator(sid, elements)
        dsms.register_stream(
            StreamSchema(sid, tuple(spec["attributes"])), elements)
    for name, query in scenario.queries.items():
        dsms.register_query(
            name, expr_from_spec(query["plan"], config.join_variant),
            roles=frozenset(query["roles"]), auto_shield=False)
    if config.columnar:
        # Generated scenarios have short segments, well under the
        # production fusion threshold — lower it so the columnar
        # kernels actually execute (otherwise this axis would silently
        # re-test the plain batched path and prove nothing).
        from repro.engine import fusion

        saved = fusion.MIN_FUSED_ROWS
        fusion.MIN_FUSED_ROWS = 1
        try:
            results = dsms.run(optimize=OptimizeLevel(config.level),
                               batching=True, columnar=True,
                               shards=config.n_shards or None)
        finally:
            fusion.MIN_FUSED_ROWS = saved
    else:
        results = dsms.run(optimize=OptimizeLevel(config.level),
                           batching=config.batching, columnar=False,
                           shards=config.n_shards or None)
    outcome = EngineOutcome()
    for name, result in results.items():
        outcome.delivered[name] = _decode_sink(result.elements)
    if config.audit and dsms.audit is not None:
        # Delivery shields are named "delivery:<query>" in the plan.
        by_operator: Counter = Counter(
            event.operator
            for event in dsms.audit.events(kind="shield.drop"))
        outcome.denied = {
            name: by_operator.get(f"delivery:{name}", 0)
            for name in scenario.queries
        }
    if dsms.last_report is not None:
        outcome.total_drops = dsms.last_report.total_drops
    return outcome


# -- baselines ----------------------------------------------------------------

def run_baseline_store_probe(scenario: Scenario,
                             name: str, query: dict) -> Counter:
    """Store-and-probe delivery for one query (single-stream scenarios)."""
    qroles = frozenset(query["roles"])
    table = PolicyTable()
    sigs: Counter = Counter()
    (elements,) = scenario.decoded().values()
    for element in elements:
        if isinstance(element, SecurityPunctuation):
            table.store(element)
            continue
        policy = table.probe(element)
        roles = frozenset(policy.roles.names())
        if roles & qroles:
            sigs[signature(element, roles)] += 1
    return sigs


def run_baseline_tuple_embedded(scenario: Scenario,
                                name: str, query: dict) -> Counter:
    """Tuple-embedded delivery for one query (single-stream scenarios)."""
    qroles = RoleSet(query["roles"])
    sigs: Counter = Counter()
    (elements,) = scenario.decoded().values()
    for policy_tuple in embed_policies(elements):
        if policy_tuple.policy.intersects(qroles):
            sigs[signature(policy_tuple.tuple,
                           frozenset(policy_tuple.policy.names()))] += 1
    return sigs


# -- diffing ------------------------------------------------------------------

@dataclass
class Mismatch:
    """One observed divergence between a configuration and the oracle."""

    scenario: str
    config: str
    query: str
    kind: str  # "delivered" | "denied" | "drops" | "error" | "analysis"
    detail: str

    def __str__(self) -> str:
        return (f"[{self.scenario}] {self.config} query={self.query} "
                f"{self.kind}: {self.detail}")


@dataclass
class ScenarioReport:
    """All mismatches of one scenario across all configurations."""

    scenario: Scenario
    mismatches: list = field(default_factory=list)
    configs_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _render_sig(sig: tuple) -> str:
    sid, tid, ts, values, roles = sig
    return (f"{sid}:{tid}@{ts} {dict(values)} roles={sorted(roles)}")


def diff_delivered(expected: "list[tuple]", actual: Counter,
                   limit: int = 3) -> str | None:
    """Human-readable multiset diff, or ``None`` when equal."""
    want = Counter(expected)
    if want == actual:
        return None
    missing = list((want - actual).elements())
    extra = list((actual - want).elements())
    parts = []
    if missing:
        shown = "; ".join(_render_sig(s) for s in missing[:limit])
        parts.append(f"missing {len(missing)} (e.g. {shown})")
    if extra:
        shown = "; ".join(_render_sig(s) for s in extra[:limit])
        parts.append(f"extra {len(extra)} (e.g. {shown})")
    return ", ".join(parts)


def verify_scenario(scenario: Scenario, *,
                    include_baselines: bool = True,
                    element_mutator: ElementMutator | None = None,
                    oracle: OracleOutcome | None = None) -> ScenarioReport:
    """Diff every configuration of one scenario against the oracle.

    ``element_mutator`` (fault injection, known-bad engine mutations)
    is applied to the *engine's* input only; pass a pre-computed
    ``oracle`` outcome to compare against something other than the
    scenario's own streams.
    """
    report = ScenarioReport(scenario)
    descr = scenario.describe()
    # Static analysis gate: a scenario the oracle can run must never
    # carry error-severity findings (warnings/infos are fine — e.g.
    # SEC001 downgrades under the assumed delivery backstop).  An
    # error here is a real defect in the scenario or the analyzer.
    from repro.analysis.speclint import lint_scenario_object

    for diagnostic in lint_scenario_object(scenario).errors:
        report.mismatches.append(Mismatch(
            descr, "analysis/strict", diagnostic.node_path, "analysis",
            str(diagnostic)))
    if oracle is None:
        oracle = run_oracle(scenario.decoded(), scenario.queries)
    drops_by_plan: dict[tuple, dict[str, int]] = {}
    for config in configs_for(scenario):
        report.configs_run += 1
        try:
            outcome = run_engine(scenario, config, element_mutator)
        except Exception as exc:  # noqa: BLE001 — report, don't crash the run
            report.mismatches.append(Mismatch(
                descr, config.label, "*", "error",
                f"{type(exc).__name__}: {exc}"))
            continue
        for name in scenario.queries:
            detail = diff_delivered(oracle.delivered[name],
                                    outcome.delivered.get(name, Counter()))
            if detail is not None:
                report.mismatches.append(Mismatch(
                    descr, config.label, name, "delivered", detail))
        if outcome.denied is not None:
            for name in scenario.queries:
                if outcome.denied[name] != oracle.denied[name]:
                    report.mismatches.append(Mismatch(
                        descr, config.label, name, "denied",
                        f"audit delivery drops {outcome.denied[name]} "
                        f"!= oracle {oracle.denied[name]}"))
        if not config.audit:
            plan_key = (config.join_variant, config.level)
            drops_by_plan.setdefault(plan_key, {})[config.mode] = \
                outcome.total_drops
    for plan_key, by_mode in drops_by_plan.items():
        if len(by_mode) > 1 and len(set(by_mode.values())) > 1:
            detail = " != ".join(f"{mode} drops {count}"
                                 for mode, count in sorted(by_mode.items()))
            report.mismatches.append(Mismatch(
                descr, f"*/{plan_key[0]}/{plan_key[1]}", "*", "drops",
                detail))
    if include_baselines and scenario.baseline_compatible() \
            and element_mutator is None:
        for name, query in scenario.queries.items():
            for label, runner in (
                    ("baseline/store-probe", run_baseline_store_probe),
                    ("baseline/tuple-embedded", run_baseline_tuple_embedded)):
                report.configs_run += 1
                try:
                    sigs = runner(scenario, name, query)
                except Exception as exc:  # noqa: BLE001
                    report.mismatches.append(Mismatch(
                        descr, label, name, "error",
                        f"{type(exc).__name__}: {exc}"))
                    continue
                detail = diff_delivered(oracle.delivered[name], sigs)
                if detail is not None:
                    report.mismatches.append(Mismatch(
                        descr, label, name, "delivered", detail))
    return report
