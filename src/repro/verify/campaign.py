"""The verification campaign: fuzz, diff, inject, shrink, persist.

This is what ``repro verify`` runs.  Output is a deterministic
transcript (no wall-clock, no environment) so two runs with the same
seed are byte-identical — itself one of the properties the test suite
asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.verify.differ import verify_scenario
from repro.verify.faults import run_fault_campaign
from repro.verify.generator import Scenario, generate_scenario
from repro.verify.shrink import load_case, save_case, shrink_scenario

__all__ = ["CampaignResult", "run_campaign", "replay_cases", "shrink_failing"]

Printer = Callable[[str], None]


@dataclass
class CampaignResult:
    scenarios: int = 0
    configs: int = 0
    faults: int = 0
    mismatches: list = field(default_factory=list)
    #: (case name, reproducer path) for every shrunk failing scenario.
    saved: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def shrink_failing(scenario: Scenario) -> Scenario:
    """Minimize a scenario that fails plain differential verification."""
    def failing(candidate: Scenario) -> bool:
        return not verify_scenario(candidate).ok
    return shrink_scenario(scenario, failing)


def _check_scenario(scenario: Scenario, *, faults: bool, fault_rng_key: str,
                    result: CampaignResult, emit: Printer,
                    save_failing: str | None, case_name: str) -> None:
    report = verify_scenario(scenario)
    result.configs += report.configs_run
    fault_outcome = None
    if faults:
        fault_outcome = run_fault_campaign(
            scenario, random.Random(fault_rng_key))
        result.faults += fault_outcome.faults_run
    bad = list(report.mismatches)
    if fault_outcome is not None:
        bad.extend(fault_outcome.mismatches)
    if not bad:
        emit(f"  ok  {scenario.describe()} configs={report.configs_run}")
        return
    emit(f"  FAIL {scenario.describe()}")
    for mismatch in bad:
        emit(f"    {mismatch}")
    result.mismatches.extend(bad)
    if report.mismatches and save_failing is not None:
        # Shrink only plain differential failures; fault campaigns
        # re-randomize under reduction, so their raw scenario is saved.
        small = shrink_failing(scenario)
        path = save_case(small, save_failing, case_name)
        result.saved.append((case_name, path))
        emit(f"    shrunk to {small.element_count()} elements -> {path}")
    elif save_failing is not None:
        path = save_case(scenario, save_failing, case_name)
        result.saved.append((case_name, path))
        emit(f"    saved unshrunk -> {path}")


def run_campaign(*, seed: int = 0, runs: int = 25, faults: bool = False,
                 save_failing: str | None = None,
                 emit: Printer = print) -> CampaignResult:
    """Generate ``runs`` scenarios from ``seed`` and verify each."""
    result = CampaignResult()
    emit(f"== sp differential verification: seed={seed} runs={runs} "
         f"faults={'on' if faults else 'off'}")
    for index in range(runs):
        result.scenarios += 1
        emit(f"[{index + 1:3d}/{runs}]")
        scenario = generate_scenario(seed, index)
        _check_scenario(
            scenario, faults=faults,
            fault_rng_key=f"sp-verify-faults:{seed}:{index}",
            result=result, emit=emit, save_failing=save_failing,
            case_name=f"seed{seed}-index{index}")
    emit(f"== {result.scenarios} scenarios, {result.configs} engine/baseline "
         f"runs, {result.faults} fault injections, "
         f"{len(result.mismatches)} mismatches")
    return result


def replay_cases(paths: "list[str]", *, faults: bool = False,
                 emit: Printer = print) -> CampaignResult:
    """Re-verify committed reproducer files."""
    result = CampaignResult()
    emit(f"== replaying {len(paths)} committed case(s)")
    for path in paths:
        result.scenarios += 1
        emit(f"[case] {path}")
        scenario = load_case(path)
        _check_scenario(
            scenario, faults=faults,
            fault_rng_key=f"sp-verify-faults:case:{path}",
            result=result, emit=emit, save_failing=None, case_name="")
    emit(f"== {result.scenarios} case(s), {result.configs} engine/baseline "
         f"runs, {len(result.mismatches)} mismatches")
    return result
