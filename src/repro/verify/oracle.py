"""The reference oracle: a naive denotational interpreter of the sp model.

This module is the ground truth the differential harness compares every
engine configuration against.  It is deliberately simple — no batching,
no indexes, no optimizer, no operator fusion — and interprets a
*scenario plan spec* (plain nested dicts, see
:mod:`repro.verify.generator`) rather than compiled physical operators,
so a bug in the engine cannot leak into the oracle through shared code.

Semantics implemented here, straight from the paper:

* **Segments**: consecutive sps sharing a timestamp form one sp-batch
  (one policy); the tuples up to the next batch form an s-punctuated
  segment governed by it (``match``/``union`` within the batch,
  ``override`` across batches — a newer batch replaces, an equal-ts
  batch refreshes, a stale batch is discarded).
* **Denial-by-default**: a tuple preceded by no applicable positive sp
  resolves to the empty role set and is invisible everywhere.
* **Resolution**: positive sps whose DDP describes the object grant
  the union of their roles; negative sps subtract the roles their SRP
  authorizes.  If any sp of the batch is attribute-granular, a tuple's
  role set is the intersection over its present attributes (emitting a
  tuple exposes all of it at once).
* **Operators**: Table I semantics, evaluated tuple-at-a-time.
  Derived tuples (join results, aggregates, re-emitted duplicates)
  carry their resolved role set directly, mirroring how the engine
  propagates wildcard grant sps for them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.punctuation import SecurityPunctuation
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = [
    "NaiveTracker",
    "OracleOutcome",
    "canonical_tid",
    "merge_streams",
    "resolve_batch",
    "run_oracle",
    "signature",
]


# -- batch tracking ---------------------------------------------------------

class NaiveTracker:
    """Segment bookkeeping: which sp-batch governs the next tuple.

    Mirrors the engine's :class:`~repro.operators.base.PolicyTracker`
    contract exactly: consecutive sps sharing a timestamp accumulate
    into one pending batch; a tuple arrival (or an sp with a different
    timestamp) finalizes it; a finalized batch replaces the governing
    one unless it is stale (older timestamp — ``override``).
    """

    def __init__(self) -> None:
        self._pending: list[SecurityPunctuation] = []
        self._current: tuple[SecurityPunctuation, ...] = ()
        self._current_ts = float("-inf")

    def observe(self, sp: SecurityPunctuation) -> None:
        if self._pending and sp.ts != self._pending[0].ts:
            self._finalize()
        self._pending.append(sp)

    def _finalize(self) -> None:
        if not self._pending:
            return
        batch = tuple(self._pending)
        self._pending = []
        if batch[0].ts < self._current_ts:
            return  # stale policy: discarded, the newer one stays
        self._current = batch
        self._current_ts = batch[0].ts

    def governing(self) -> tuple[SecurityPunctuation, ...]:
        """The batch governing a tuple arriving now (finalizes pending)."""
        self._finalize()
        return self._current


# -- resolution -------------------------------------------------------------

def _object_roles(batch: Sequence[SecurityPunctuation], sid: object,
                  tid: object, attr: object) -> frozenset[str]:
    granted: set[str] = set()
    for sp in batch:
        if sp.is_positive and sp.ddp.describes(sid, tid, attr):
            granted |= sp.roles()
    if not granted:
        return frozenset()
    for sp in batch:
        if not sp.is_positive and sp.ddp.describes(sid, tid, attr):
            granted = {r for r in granted if not sp.srp.authorizes(r)}
    return frozenset(granted)


def resolve_batch(batch: Sequence[SecurityPunctuation],
                  item: DataTuple) -> frozenset[str]:
    """Roles that may access ``item`` under the governing ``batch``."""
    if not batch:
        return frozenset()
    if any(not sp.ddp.attribute.is_wildcard() for sp in batch):
        roles: frozenset[str] | None = None
        for attr in item.values:
            authorized = _object_roles(batch, item.sid, item.tid, attr)
            roles = authorized if roles is None else roles & authorized
            if not roles:
                break
        return roles or frozenset()
    return _object_roles(batch, item.sid, item.tid, None)


#: A tuple's provenance through the interpreter: either the raw
#: governing sp-batch (scan-level tuples) or an already-resolved role
#: set (derived tuples).
Annot = tuple


def resolve(annot: Annot, item: DataTuple) -> frozenset[str]:
    kind, payload = annot
    if kind == "roles":
        return payload
    return resolve_batch(payload, item)


# -- result signatures -------------------------------------------------------

def canonical_tid(tid: object) -> object:
    """Order-insensitive tid form (join re-association reorders pairs)."""
    if isinstance(tid, tuple):
        flat: list[str] = []
        stack = list(tid)
        while stack:
            part = stack.pop()
            if isinstance(part, tuple):
                stack.extend(part)
            else:
                flat.append(str(part))
        return tuple(sorted(flat))
    return tid


def signature(item: DataTuple, roles: frozenset[str]) -> tuple:
    """Comparable identity of one delivered tuple."""
    return (item.sid, canonical_tid(item.tid), item.ts,
            tuple(sorted(item.values.items())), tuple(sorted(roles)))


# -- merged feed -------------------------------------------------------------

def merge_streams(
    streams: "dict[str, list[StreamElement]]",
) -> list[tuple[str, StreamElement]]:
    """Timestamp-ordered merged feed, tagged with the source stream id.

    Ties break by stream registration order then arrival position —
    the same discipline as the engine executor's source merge.
    """
    heap: list[tuple[float, int, int, str, StreamElement]] = []
    for src_index, (sid, elements) in enumerate(streams.items()):
        for seq, element in enumerate(elements):
            heap.append((element.ts, src_index, seq, sid, element))
    heapq.heapify(heap)
    out: list[tuple[str, StreamElement]] = []
    while heap:
        _, _, _, sid, element = heapq.heappop(heap)
        out.append((sid, element))
    return out


# -- naive select conditions --------------------------------------------------

def _evaluate_condition(spec: dict, item: DataTuple) -> bool:
    """Mirror of the engine Comparison semantics (None/TypeError → False)."""
    if "udf" in spec:
        # Named UDFs have no algebraic mirror: the registered callable
        # *is* the semantics, so the oracle evaluates it directly.
        # Purity/determinism of registered UDFs is enforced by SEC007
        # and the registry's analyzer-provable built-in style.
        from repro.operators.udfs import call_udf

        return call_udf(spec["udf"], item)
    left = item.get(spec["attribute"])
    right = spec["value"]
    if left is None or right is None:
        return False
    op = spec["op"]
    try:
        if op in ("=", "=="):
            return left == right
        if op in ("!=", "<>"):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise ValueError(f"unknown comparison op: {op!r}")


# -- aggregates ---------------------------------------------------------------

def _aggregate(name: str, values: Iterable[object]) -> object:
    values = list(values)
    if name == "count":
        return len(values)
    if name == "sum":
        total = 0
        for value in values:
            total = total + value
        return total
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    if name == "avg":
        total = 0
        for value in values:
            total = total + value
        return total / len(values)
    raise ValueError(f"unknown aggregate: {name!r}")


# -- plan interpreter ---------------------------------------------------------

Entry = tuple  # (DataTuple, Annot)


class _Node:
    """One interpreted plan operator; feed() pushes one source element."""

    def feed(self, sid: str, element: StreamElement) -> list[Entry]:
        raise NotImplementedError


class _Scan(_Node):
    def __init__(self, stream_id: str):
        self.stream_id = stream_id
        self.tracker = NaiveTracker()

    def feed(self, sid: str, element: StreamElement) -> list[Entry]:
        if sid != self.stream_id:
            return []
        if isinstance(element, SecurityPunctuation):
            self.tracker.observe(element)
            return []
        return [(element, ("batch", self.tracker.governing()))]


class _Shield(_Node):
    def __init__(self, child: _Node, predicates: Sequence[frozenset[str]]):
        self.child = child
        self.predicates = tuple(frozenset(p) for p in predicates)

    def feed(self, sid: str, element: StreamElement) -> list[Entry]:
        out = []
        for item, annot in self.child.feed(sid, element):
            roles = resolve(annot, item)
            if all(roles & p for p in self.predicates):
                out.append((item, annot))
        return out


class _Select(_Node):
    def __init__(self, child: _Node, condition: dict):
        self.child = child
        self.condition = condition

    def feed(self, sid: str, element: StreamElement) -> list[Entry]:
        return [(item, annot)
                for item, annot in self.child.feed(sid, element)
                if _evaluate_condition(self.condition, item)]


class _Project(_Node):
    def __init__(self, child: _Node, attributes: Sequence[str]):
        self.child = child
        self.attributes = tuple(attributes)

    def feed(self, sid: str, element: StreamElement) -> list[Entry]:
        return [(item.project(self.attributes), annot)
                for item, annot in self.child.feed(sid, element)]


class _DupElim(_Node):
    """Mirror of Section IV.B's three-case δ, tuple-at-a-time."""

    def __init__(self, child: _Node, window: float,
                 attributes: Sequence[str] | None):
        self.child = child
        self.window = window
        self.attributes = tuple(attributes) if attributes else None
        self._output: dict[object, list] = {}  # key -> [roles, live_count]
        self._log: list[tuple[float, object]] = []

    def _key(self, item: DataTuple) -> object:
        if self.attributes is None:
            return tuple(sorted(item.values.items(), key=lambda kv: kv[0]))
        return tuple(item.values.get(a) for a in self.attributes)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._log and self._log[0][0] <= horizon:
            _, key = self._log.pop(0)
            entry = self._output.get(key)
            if entry is not None:
                entry[1] -= 1
                if entry[1] <= 0:
                    del self._output[key]

    def feed(self, sid: str, element: StreamElement) -> list[Entry]:
        out: list[Entry] = []
        for item, annot in self.child.feed(sid, element):
            out.extend(self._on_tuple(item, annot))
        return out

    def _on_tuple(self, item: DataTuple, annot: Annot) -> list[Entry]:
        self._expire(item.ts)
        roles = resolve(annot, item)
        if not roles:
            return []  # invisible tuples never suppress later duplicates
        key = self._key(item)
        self._log.append((item.ts, key))
        entry = self._output.get(key)
        if entry is None:
            self._output[key] = [roles, 1]
            return [(item, ("roles", roles))]
        entry[1] += 1
        old = entry[0]
        common = old & roles
        if not common:  # case 1: disjoint — replace and re-emit
            entry[0] = roles
            return [(item, ("roles", roles))]
        if common == roles:  # case 2: everyone already saw it
            return []
        entry[0] = old | roles  # case 3: emit for the news roles only
        return [(item, ("roles", roles - common))]


_SINGLE = "*"


class _GroupBySub:
    __slots__ = ("roles", "values", "serial")

    def __init__(self, roles: frozenset[str], serial: int):
        self.roles = roles
        self.values: list[tuple[float, object]] = []
        self.serial = serial


class _GroupBy(_Node):
    """Mirror of the ASG-partitioned windowed aggregate."""

    def __init__(self, child: _Node, key: str | None, agg: str,
                 attribute: str, window: float,
                 output_sid: str = "grouped"):
        self.child = child
        self.key = key
        self.agg = agg.lower()
        self.attribute = attribute
        self.window = window
        self.output_sid = output_sid
        self._groups: dict[object, list[_GroupBySub]] = {}
        self._serial = 0

    def feed(self, sid: str, element: StreamElement) -> list[Entry]:
        out: list[Entry] = []
        for item, annot in self.child.feed(sid, element):
            out.extend(self._on_tuple(item, annot))
        return out

    def _expire(self, now: float, out: list[Entry]) -> None:
        horizon = now - self.window
        dead_groups = []
        for group_value, subgroups in self._groups.items():
            dead = []
            for sg in subgroups:
                changed = False
                while sg.values and sg.values[0][0] <= horizon:
                    sg.values.pop(0)
                    changed = True
                if changed:
                    if sg.values:
                        out.append(self._result(group_value, sg, now))
                    else:
                        dead.append(sg)
            for sg in dead:
                subgroups.remove(sg)
            if not subgroups:
                dead_groups.append(group_value)
        for group_value in dead_groups:
            del self._groups[group_value]

    def _on_tuple(self, item: DataTuple, annot: Annot) -> list[Entry]:
        out: list[Entry] = []
        self._expire(item.ts, out)
        roles = resolve(annot, item)
        if not roles:
            return out
        group_value = (item.values.get(self.key)
                       if self.key is not None else _SINGLE)
        subgroups = self._groups.setdefault(group_value, [])
        matching = [sg for sg in subgroups if sg.roles & roles]
        if not matching:
            target = _GroupBySub(roles, self._serial)
            self._serial += 1
            subgroups.append(target)
        else:
            target = matching[0]
            for other in matching[1:]:
                target.roles |= other.roles
                target.values = sorted(target.values + other.values,
                                       key=lambda pair: pair[0])
                subgroups.remove(other)
            target.roles |= roles
        target.values.append((item.ts, item.values.get(self.attribute)))
        out.append(self._result(group_value, target, item.ts))
        return out

    def _result(self, group_value: object, sg: _GroupBySub,
                ts: float) -> Entry:
        values: dict[str, object] = {}
        if self.key is not None:
            values[self.key] = group_value
        values[f"{self.agg}({self.attribute})"] = _aggregate(
            self.agg, (v for _, v in sg.values))
        tid = (group_value if self.key is not None else "*", sg.serial)
        return (DataTuple(self.output_sid, tid, values, ts),
                ("roles", sg.roles))


class _Join(_Node):
    """Mirror of the nested-loop SAJoin (Table I join semantics)."""

    def __init__(self, left: _Node, right: _Node, left_on: str,
                 right_on: str, window: float, output_sid: str = "joined"):
        self.children = (left, right)
        self.on = (left_on, right_on)
        self.window = window
        self.output_sid = output_sid
        self._entries: tuple[list[Entry], list[Entry]] = ([], [])

    def feed(self, sid: str, element: StreamElement) -> list[Entry]:
        out: list[Entry] = []
        for port in (0, 1):
            for item, annot in self.children[port].feed(sid, element):
                out.extend(self._on_tuple(item, annot, port))
        return out

    def _on_tuple(self, item: DataTuple, annot: Annot,
                  port: int) -> list[Entry]:
        opposite = 1 - port
        horizon = item.ts - self.window
        self._entries = tuple(
            ([e for e in entries if e[0].ts > horizon]
             if index == opposite else entries)
            for index, entries in enumerate(self._entries)
        )
        self._entries[port].append((item, annot))
        roles = resolve(annot, item)
        if not roles:
            return []  # denial-by-default: joins with nothing
        out: list[Entry] = []
        for other, other_annot in self._entries[opposite]:
            left, right = (item, other) if port == 0 else (other, item)
            if left.values.get(self.on[0]) != right.values.get(self.on[1]):
                continue
            other_roles = resolve(other_annot, other)
            joined = roles & other_roles
            if not joined:
                continue
            out.append((left.merge(right, self.output_sid),
                        ("roles", joined)))
        return out


def build_node(spec: dict) -> _Node:
    """Interpreter tree for one scenario plan spec."""
    op = spec["op"]
    if op == "scan":
        return _Scan(spec["stream"])
    if op == "shield":
        return _Shield(build_node(spec["input"]),
                       [frozenset(p) for p in spec["predicates"]])
    if op == "select":
        return _Select(build_node(spec["input"]), spec["condition"])
    if op == "project":
        return _Project(build_node(spec["input"]), spec["attributes"])
    if op == "dupelim":
        return _DupElim(build_node(spec["input"]), spec["window"],
                        spec.get("attributes"))
    if op == "groupby":
        return _GroupBy(build_node(spec["input"]), spec.get("key"),
                        spec["agg"], spec["attribute"], spec["window"])
    if op == "join":
        return _Join(build_node(spec["left"]), build_node(spec["right"]),
                     spec["left_on"], spec["right_on"], spec["window"])
    raise ValueError(f"unknown plan op: {op!r}")


def plan_ops(spec: dict) -> set[str]:
    """All operator kinds in a plan spec."""
    ops = {spec["op"]}
    for key in ("input", "left", "right"):
        child = spec.get(key)
        if child is not None:
            ops |= plan_ops(child)
    return ops


# -- whole-scenario evaluation -------------------------------------------------

@dataclass
class OracleOutcome:
    """Per-query delivered tuples and denial counts."""

    delivered: dict[str, list[tuple]] = field(default_factory=dict)
    denied: dict[str, int] = field(default_factory=dict)


def run_oracle(streams: "dict[str, list[StreamElement]]",
               queries: "dict[str, dict]") -> OracleOutcome:
    """Interpret every query independently over the merged feed.

    ``queries`` maps query name to ``{"roles": [...], "plan": spec}``.
    A delivered tuple's signature carries its *full* resolved role set
    (the delivery check only gates on intersection with the query's
    roles, it does not narrow the emitted policy — exactly what the
    engine's delivery shield does).
    """
    feed = merge_streams(streams)
    outcome = OracleOutcome()
    for name, query in queries.items():
        root = build_node(query["plan"])
        qroles = frozenset(query["roles"])
        delivered: list[tuple] = []
        denied = 0
        for sid, element in feed:
            for item, annot in root.feed(sid, element):
                roles = resolve(annot, item)
                if roles & qroles:
                    delivered.append(signature(item, roles))
                else:
                    denied += 1
        outcome.delivered[name] = delivered
        outcome.denied[name] = denied
    return outcome
