"""Differential verification harness for the sp enforcement engine.

The modules here close the loop between the paper's denotational
semantics and the engine's optimized implementations:

* :mod:`repro.verify.oracle` — a naive reference interpreter (the
  ground truth);
* :mod:`repro.verify.generator` — seeded random scenarios: schemas,
  plans with shields at random legal positions, interleaved sp/tuple
  streams;
* :mod:`repro.verify.differ` — runs every engine configuration
  (element-wise/batched × NL/SPIndex × optimizer levels × baselines)
  and diffs deliveries, denial counts and drop counters against the
  oracle;
* :mod:`repro.verify.shrink` — delta-debugs failing scenarios into
  minimal JSON reproducers (committed under ``tests/verify/cases/``);
* :mod:`repro.verify.faults` — sp drop/duplicate/reorder/truncation
  and malformed-text faults with oracle-defined expectations;
* :mod:`repro.verify.campaign` — the ``repro verify`` entry point.

See ``docs/VERIFICATION.md`` for the full methodology.
"""

from repro.verify.campaign import (CampaignResult, replay_cases,
                                   run_campaign, shrink_failing)
from repro.verify.differ import (EngineConfig, Mismatch, ScenarioReport,
                                 configs_for, run_engine, verify_scenario)
from repro.verify.faults import (FaultOutcome, disable_denial_by_default,
                                 run_fault_campaign)
from repro.verify.generator import Scenario, generate_scenario
from repro.verify.oracle import OracleOutcome, run_oracle
from repro.verify.shrink import (load_case, load_cases, save_case,
                                 shrink_scenario)

__all__ = [
    "CampaignResult",
    "EngineConfig",
    "FaultOutcome",
    "Mismatch",
    "OracleOutcome",
    "Scenario",
    "ScenarioReport",
    "configs_for",
    "disable_denial_by_default",
    "generate_scenario",
    "load_case",
    "load_cases",
    "replay_cases",
    "run_campaign",
    "run_engine",
    "run_fault_campaign",
    "run_oracle",
    "save_case",
    "shrink_failing",
    "shrink_scenario",
    "verify_scenario",
]
