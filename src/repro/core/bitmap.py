"""Role universes and role-set encodings.

Security punctuations authorize *sets of roles*.  The paper notes
(Section I.C) that policies "can also be encoded in a bitmap format for
compactness".  This module provides both encodings behind one protocol:

* :class:`RoleSet` — a frozenset-backed role set (the alphanumeric
  format the paper uses for presentation).
* :class:`RoleBitmap` — an integer-bitmap role set over a
  :class:`RoleUniverse`, used by the bitmap ablation benchmarks.

A :class:`RoleUniverse` assigns each role a stable integer id.  The id
order is the role order the SPIndex skipping rule (Lemma 5.1) relies
on, so the universe is also the single source of truth for "role order"
throughout the system.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import AccessControlError

__all__ = ["RoleUniverse", "AbstractRoleSet", "RoleSet", "RoleBitmap",
           "bulk_encode"]


class RoleUniverse:
    """Ordered registry of all roles known to the system.

    Roles are registered once and receive monotonically increasing
    integer ids.  The universe is shared by bitmaps (bit positions) and
    by the SPIndex r-node array (array slots).
    """

    def __init__(self, roles: Iterable[str] = ()):
        self._ids: dict[str, int] = {}
        self._names: list[str] = []
        for role in roles:
            self.register(role)

    def register(self, role: str) -> int:
        """Register ``role`` (idempotent) and return its id."""
        if not role:
            raise AccessControlError("role name must be non-empty")
        existing = self._ids.get(role)
        if existing is not None:
            return existing
        role_id = len(self._names)
        self._ids[role] = role_id
        self._names.append(role)
        return role_id

    def id_of(self, role: str) -> int:
        """Id of a registered role; raises if unknown."""
        try:
            return self._ids[role]
        except KeyError:
            raise AccessControlError(f"unknown role: {role!r}") from None

    def name_of(self, role_id: int) -> str:
        """Role name for an id; raises if out of range."""
        if 0 <= role_id < len(self._names):
            return self._names[role_id]
        raise AccessControlError(f"unknown role id: {role_id}")

    def __contains__(self, role: str) -> bool:
        return role in self._ids

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def roles(self) -> tuple[str, ...]:
        """All role names in id order."""
        return tuple(self._names)

    def sort_key(self, role: str) -> int:
        """Sorting key: registered id, registering on first sight.

        Sps may mention roles the server has not seen yet; they are
        registered lazily so that every role always has a stable order.
        """
        return self.register(role)

    # -- bulk mask operations (columnar tier) ------------------------------
    def encode(self, roles: Iterable[str]) -> int:
        """Integer bitmap of ``roles``, registering unseen roles.

        The mask encoding the columnar role-bitmap column uses: one
        bit per role, positions fixed by this universe.
        """
        bits = 0
        ids = self._ids
        for role in roles:
            role_id = ids.get(role)
            if role_id is None:
                role_id = self.register(role)
            bits |= 1 << role_id
        return bits

    def decode(self, mask: int) -> frozenset[str]:
        """Role names encoded in ``mask`` (inverse of :meth:`encode`)."""
        names = self._names
        out = []
        while mask:
            low = mask & -mask
            role_id = low.bit_length() - 1
            if role_id >= len(names):
                raise AccessControlError(f"unknown role id: {role_id}")
            out.append(names[role_id])
            mask ^= low
        return frozenset(out)


class AbstractRoleSet:
    """Protocol shared by :class:`RoleSet` and :class:`RoleBitmap`.

    All operations are non-mutating and return the same concrete type
    as ``self``.
    """

    __slots__ = ("_sorted_cache",)

    def names(self) -> frozenset[str]:
        raise NotImplementedError

    def names_sorted(self) -> list[str]:
        """Sorted role names, memoized per instance.

        Provenance and audit records render the governing policy as a
        sorted name list on every security verdict; role sets are
        immutable, so the render is computed once and shared (callers
        must not mutate the returned list).
        """
        cached = getattr(self, "_sorted_cache", None)
        if cached is None:
            cached = self._sorted_cache = sorted(self.names())
        return cached

    def intersect(self, other: "AbstractRoleSet") -> "AbstractRoleSet":
        raise NotImplementedError

    def union(self, other: "AbstractRoleSet") -> "AbstractRoleSet":
        raise NotImplementedError

    def difference(self, other: "AbstractRoleSet") -> "AbstractRoleSet":
        raise NotImplementedError

    def is_empty(self) -> bool:
        raise NotImplementedError

    def __contains__(self, role: str) -> bool:
        return role in self.names()

    def __len__(self) -> int:
        return len(self.names())

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.names()))

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractRoleSet):
            return NotImplemented
        return self.names() == other.names()

    def __hash__(self) -> int:
        return hash(self.names())

    def intersects(self, other: "AbstractRoleSet") -> bool:
        """Fast non-empty-intersection test (the SS/join predicate)."""
        return not self.intersect(other).is_empty()


class RoleSet(AbstractRoleSet):
    """Frozenset-backed role set."""

    __slots__ = ("_roles",)

    def __init__(self, roles: Iterable[str] = ()):
        if isinstance(roles, str):
            roles = (roles,)
        self._roles = frozenset(roles)

    @classmethod
    def of(cls, *roles: str) -> "RoleSet":
        """Convenience constructor: ``RoleSet.of("D", "ND")``."""
        return cls(roles)

    def names(self) -> frozenset[str]:
        return self._roles

    def intersect(self, other: AbstractRoleSet) -> "RoleSet":
        return RoleSet(self._roles & other.names())

    def union(self, other: AbstractRoleSet) -> "RoleSet":
        return RoleSet(self._roles | other.names())

    def difference(self, other: AbstractRoleSet) -> "RoleSet":
        return RoleSet(self._roles - other.names())

    def is_empty(self) -> bool:
        return not self._roles

    def intersects(self, other: AbstractRoleSet) -> bool:
        if isinstance(other, RoleSet):
            return not self._roles.isdisjoint(other._roles)
        return not self._roles.isdisjoint(other.names())

    def __repr__(self) -> str:
        return f"RoleSet({{{', '.join(sorted(self._roles))}}})"


def bulk_encode(universe: RoleUniverse,
                role_sets: Iterable[AbstractRoleSet]) -> list[int]:
    """Encode many role sets as integer masks in one pass.

    The per-row role-bitmap column of a
    :class:`~repro.stream.columnar.ColumnBatch` is produced here.
    Role sets repeat heavily across a segment (often a single shared
    :class:`~repro.core.policy.TuplePolicy` object), so the encoding is
    memoized by object identity first and by value second.
    """
    by_id: dict[int, int] = {}
    by_value: dict[frozenset[str], int] = {}
    out: list[int] = []
    append = out.append
    for role_set in role_sets:
        key = id(role_set)
        mask = by_id.get(key)
        if mask is None:
            names = role_set.names()
            mask = by_value.get(names)
            if mask is None:
                mask = universe.encode(names)
                by_value[names] = mask
            by_id[key] = mask
        append(mask)
    return out


class RoleBitmap(AbstractRoleSet):
    """Integer-bitmap role set over a :class:`RoleUniverse`.

    Set operations are single integer bitwise operations, making the
    encoding attractive for large policies (cf. the paper's Eddies
    bitmap discussion).
    """

    __slots__ = ("_universe", "_mask")

    def __init__(self, universe: RoleUniverse, roles: Iterable[str] = (), *,
                 mask: int | None = None):
        self._universe = universe
        if mask is not None:
            self._mask = mask
        else:
            bits = 0
            for role in roles:
                bits |= 1 << universe.register(role)
            self._mask = bits

    @property
    def universe(self) -> RoleUniverse:
        return self._universe

    @property
    def mask(self) -> int:
        return self._mask

    def names(self) -> frozenset[str]:
        out = []
        mask = self._mask
        while mask:
            low = mask & -mask
            out.append(self._universe.name_of(low.bit_length() - 1))
            mask ^= low
        return frozenset(out)

    def _coerce_mask(self, other: AbstractRoleSet) -> int:
        if isinstance(other, RoleBitmap):
            if other._universe is not self._universe:
                raise AccessControlError(
                    "cannot combine bitmaps from different role universes"
                )
            return other._mask
        bits = 0
        for role in other.names():
            bits |= 1 << self._universe.register(role)
        return bits

    def intersect(self, other: AbstractRoleSet) -> "RoleBitmap":
        return RoleBitmap(self._universe, mask=self._mask & self._coerce_mask(other))

    def union(self, other: AbstractRoleSet) -> "RoleBitmap":
        return RoleBitmap(self._universe, mask=self._mask | self._coerce_mask(other))

    def difference(self, other: AbstractRoleSet) -> "RoleBitmap":
        return RoleBitmap(self._universe, mask=self._mask & ~self._coerce_mask(other))

    def is_empty(self) -> bool:
        return self._mask == 0

    def intersects(self, other: AbstractRoleSet) -> bool:
        return bool(self._mask & self._coerce_mask(other))

    def __len__(self) -> int:
        return self._mask.bit_count()

    def __contains__(self, role: str) -> bool:
        if role not in self._universe:
            return False
        return bool(self._mask & (1 << self._universe.id_of(role)))

    def __repr__(self) -> str:
        return f"RoleBitmap({{{', '.join(sorted(self.names()))}}})"
