"""The paper's primary contribution: the security-punctuation model.

Submodules
----------

``patterns``
    The ``eval(N, e)`` pattern language used inside sp DDP/SRP fields.
``punctuation``
    The sp structure ``<DDP | SRP | Sign | Immutable | ts>`` and
    sp-batches.
``policy``
    Policy semantics: ``match``/``union``/``intersect``/``override``,
    denial-by-default, and the resolved per-tuple :class:`TuplePolicy`.
``bitmap``
    Role universes plus plain-set and bitmap role-set encodings.
``analyzer``
    The server-edge SP Analyzer (combination + server-side refinement).
"""

from repro.core.analyzer import SPAnalyzer, combine_batch
from repro.core.bitmap import RoleBitmap, RoleSet, RoleUniverse
from repro.core.patterns import (ANY, Pattern, literal, numeric_range, one_of,
                                 parse_pattern, regex)
from repro.core.policy import (EMPTY_POLICY, AccessPolicy, Policy,
                               PolicyIntersection, PolicyUnion, TuplePolicy,
                               apply_incremental_batch, deny_all_sp,
                               has_attribute_scope, override,
                               policy_from_sps, resolve_tuple_policy,
                               wildcard_policy_roles)
from repro.core.punctuation import (DataDescription, Granularity,
                                    SecurityPunctuation, SecurityRestriction,
                                    Sign, SPBatch, sp_for_roles)

__all__ = [
    "ANY",
    "AccessPolicy",
    "DataDescription",
    "EMPTY_POLICY",
    "Granularity",
    "Pattern",
    "Policy",
    "PolicyIntersection",
    "PolicyUnion",
    "RoleBitmap",
    "RoleSet",
    "RoleUniverse",
    "SPAnalyzer",
    "SPBatch",
    "SecurityPunctuation",
    "SecurityRestriction",
    "Sign",
    "TuplePolicy",
    "apply_incremental_batch",
    "combine_batch",
    "deny_all_sp",
    "has_attribute_scope",
    "literal",
    "numeric_range",
    "one_of",
    "override",
    "parse_pattern",
    "policy_from_sps",
    "regex",
    "resolve_tuple_policy",
    "sp_for_roles",
    "wildcard_policy_roles",
]
