"""The SP Analyzer (Figure 1 of the paper).

The DSMS server runs a *security punctuation analyzer* at the stream
ingestion edge.  It serves two purposes:

1. **Combining** security punctuations with similar policies, to reduce
   memory and processing overhead downstream (e.g. several sps of one
   batch granting roles on the same objects become a single sp).
2. **Server-side policy specification**: organizations may register
   their own policies; these are translated into sp format and
   *intersected* with arriving data-provider sps, so the server can
   refine — but never widen — provider policies.  Provider sps marked
   ``Immutable`` are exempt: server policies are ignored for them.

The analyzer also *normalizes* sps whose SRP uses open-ended role
patterns (wildcards, regexes, ranges) by resolving them against the
system's role universe, so that everything downstream of the analyzer
deals in concrete role sets only — the operator hot paths never touch
regular expressions.

Server refinement semantics
---------------------------

When a server sp overlaps a provider sp, the analyzer computes the DDP
*conjunction* per field (wildcard ∧ X = X, equal patterns collapse,
enumerable sets intersect, ranges intersect).  If the conjunction
covers the provider sp's whole scope, roles are intersected in place.
If the server sp only partially overlaps and the provider scope is
enumerable, the provider sp is split into refined and unrefined parts.
If the overlap cannot be decided statically (two open-ended patterns),
the analyzer applies the intersection to the whole provider scope —
a *conservative* choice that can only reduce access, never widen it;
the ``conservative_refinements`` counter records how often this
happened.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.bitmap import RoleUniverse
from repro.core.patterns import (ANY, CompositePattern, LiteralPattern,
                                 Pattern, RangePattern, SetPattern, one_of)
from repro.core.policy import AccessPolicy, Policy
from repro.core.punctuation import (DataDescription, SecurityPunctuation,
                                    SecurityRestriction, Sign, SPBatch)
from repro.errors import PolicyError
from repro.observability.trace import NullTraceSink

__all__ = ["SPAnalyzer", "conjoin_patterns", "conjoin_ddp", "combine_batch"]


def _enumerable_values(pattern: Pattern) -> frozenset | None:
    """Concrete values of an enumerable pattern, else ``None``."""
    if isinstance(pattern, LiteralPattern):
        return frozenset({pattern.value})
    if isinstance(pattern, SetPattern):
        return frozenset(pattern.values)
    if isinstance(pattern, CompositePattern):
        out: set = set()
        for part in pattern.parts:
            sub = _enumerable_values(part)
            if sub is None:
                return None
            out |= sub
        return frozenset(out)
    return None


def conjoin_patterns(a: Pattern, b: Pattern) -> Pattern | None:
    """Pattern matching exactly the values both match, if computable.

    Returns ``None`` when the conjunction cannot be determined
    statically (e.g. two distinct regexes).  An empty conjunction is
    represented by an empty :class:`SetPattern` substitute — callers
    should test with :func:`conjunction_is_empty`.
    """
    if a.is_wildcard():
        return b
    if b.is_wildcard():
        return a
    if a == b:
        return a
    values_a = _enumerable_values(a)
    values_b = _enumerable_values(b)
    if values_a is not None and values_b is not None:
        common = {v for v in values_a
                  if b.matches(v)} | {v for v in values_b if a.matches(v)}
        return one_of(common) if common else _EMPTY
    if values_a is not None:
        common = {v for v in values_a if b.matches(v)}
        return one_of(common) if common else _EMPTY
    if values_b is not None:
        common = {v for v in values_b if a.matches(v)}
        return one_of(common) if common else _EMPTY
    if isinstance(a, RangePattern) and isinstance(b, RangePattern):
        low, high = max(a.low, b.low), min(a.high, b.high)
        if low > high:
            return _EMPTY
        return RangePattern(low, high)
    return None


class _EmptyPattern(Pattern):
    """Matches nothing; marks an empty statically-computed conjunction."""

    __slots__ = ()

    def matches(self, value: object) -> bool:
        return False

    def spec(self) -> str:
        return "{}"


_EMPTY = _EmptyPattern()


def conjunction_is_empty(pattern: Pattern | None) -> bool:
    return isinstance(pattern, _EmptyPattern)


def conjoin_ddp(a: DataDescription, b: DataDescription) -> DataDescription | None:
    """Field-wise DDP conjunction; ``None`` if undecidable or empty."""
    stream = conjoin_patterns(a.stream, b.stream)
    tuple_id = conjoin_patterns(a.tuple_id, b.tuple_id)
    attribute = conjoin_patterns(a.attribute, b.attribute)
    if stream is None or tuple_id is None or attribute is None:
        return None
    if any(conjunction_is_empty(p) for p in (stream, tuple_id, attribute)):
        return None
    return DataDescription(stream=stream, tuple_id=tuple_id,
                           attribute=attribute)


def combine_batch(
    sps: Sequence[SecurityPunctuation],
) -> list[SecurityPunctuation]:
    """Merge sps of one batch that share DDP, sign and timestamp.

    This is the analyzer's "combine similar policies" duty: the merged
    sp authorizes the union of the merged roles.  Sps whose SRP is not
    enumerable are passed through unchanged.  Input order of distinct
    (ddp, sign) groups is preserved.
    """
    merged: dict[tuple, list[SecurityPunctuation]] = {}
    order: list[tuple] = []
    passthrough: list[SecurityPunctuation] = []
    for sp in sps:
        if sp.srp.concrete_roles() is None:
            passthrough.append(sp)
            continue
        key = (sp.ddp, sp.sign, sp.ts, sp.immutable, sp.provider,
               sp.srp.model_type, sp.incremental)
        if key not in merged:
            merged[key] = []
            order.append(key)
        merged[key].append(sp)
    out: list[SecurityPunctuation] = []
    for key in order:
        group = merged[key]
        if len(group) == 1:
            out.append(group[0])
            continue
        roles: set[str] = set()
        for sp in group:
            roles |= sp.roles()
        first = group[0]
        out.append(SecurityPunctuation(
            ddp=first.ddp,
            srp=SecurityRestriction.for_roles(sorted(roles),
                                              first.srp.model_type),
            sign=first.sign,
            immutable=first.immutable,
            ts=first.ts,
            provider=first.provider,
            incremental=first.incremental,
        ))
    return out + passthrough


class SPAnalyzer:
    """Server-edge sp normalization, combination and refinement."""

    def __init__(self, universe: RoleUniverse | None = None):
        self.universe = universe if universe is not None else RoleUniverse()
        self._server_sps: list[SecurityPunctuation] = []
        #: How often an undecidable overlap forced a conservative
        #: whole-scope refinement.
        self.conservative_refinements = 0
        #: Counters for observability.
        self.sps_in = 0
        self.sps_out = 0
        #: Audit log for server-policy refinements (None = silent).
        self.audit = None
        #: Trace sink for per-batch span events.
        self.tracer = NullTraceSink()
        #: sp-batch-size histogram (None = metrics off).
        self._m_batch_size = None

    def bind_observability(self, observability) -> None:
        """Attach a DSMS's :class:`~repro.observability.Observability`."""
        self.audit = observability.audit
        self.tracer = observability.tracer
        instruments = observability.instruments
        if instruments is not None:
            self._m_batch_size = instruments.sp_batch_size.labels()

    # -- server policies ---------------------------------------------------
    def add_server_policy(self, sp: SecurityPunctuation) -> None:
        """Register a server-specified policy (translated to sp form)."""
        if sp.provider is not None:
            raise PolicyError("server policies must have provider=None")
        self._server_sps.append(self._normalize(sp))

    def clear_server_policies(self) -> None:
        self._server_sps.clear()

    @property
    def server_sps(self) -> tuple[SecurityPunctuation, ...]:
        return tuple(self._server_sps)

    # -- normalization ------------------------------------------------------
    def _normalize(self, sp: SecurityPunctuation) -> SecurityPunctuation:
        """Resolve open-ended role patterns against the role universe."""
        if sp.srp.concrete_roles() is not None:
            for role in sp.roles():
                self.universe.register(role)
            return sp
        resolved = sp.srp.resolve(self.universe.roles())
        if not resolved:
            # The pattern matches no currently-known role.  Keep the sp
            # as-is: a positive sp authorizing nobody contributes
            # nothing (denial-by-default) but still marks the batch
            # boundary, and the open pattern may match roles registered
            # later.
            return sp
        return sp.with_roles(sorted(resolved))

    # -- refinement ----------------------------------------------------------
    def _refine(self, sp: SecurityPunctuation) -> list[SecurityPunctuation]:
        """Intersect one provider sp with applicable server policies."""
        if sp.immutable or not self._server_sps or not sp.is_positive:
            # Negative provider sps only remove access; server
            # intersection semantics concern positive grants.
            return [sp]
        conservative_before = self.conservative_refinements
        current = [sp]
        for server_sp in self._server_sps:
            if not server_sp.is_positive:
                # A negative server sp refines by subtraction on the
                # overlap; handled by emitting it alongside (same ts as
                # the provider batch) so batch semantics subtract it.
                continue
            next_round: list[SecurityPunctuation] = []
            for item in current:
                next_round.extend(self._refine_one(item, server_sp))
            current = next_round
        if self.audit is not None and current != [sp]:
            result_roles: set[str] = set()
            for item in current:
                result_roles |= item.roles()
            self.audit.record(
                "analyzer.refine", ts=sp.ts, operator="SPAnalyzer",
                policy=tuple(sorted(sp.roles())), sp=sp.to_text(),
                result_roles=sorted(result_roles),
                result_sps=len(current),
                conservative=(self.conservative_refinements
                              - conservative_before),
            )
        return current

    def _refine_one(self, sp: SecurityPunctuation,
                    server_sp: SecurityPunctuation) -> list[SecurityPunctuation]:
        conj = conjoin_ddp(sp.ddp, server_sp.ddp)
        if conj is None:
            # Undecidable or empty overlap.  Distinguish: if any field
            # pair is *provably* empty we know there is no overlap.
            if self._provably_disjoint(sp.ddp, server_sp.ddp):
                return [sp]
            self.conservative_refinements += 1
            restricted = sp.roles() & server_sp.roles()
            return [sp.with_roles(sorted(restricted))] if restricted else []
        restricted = sp.roles() & server_sp.roles()
        if conj == sp.ddp:
            # Server scope covers the provider sp entirely.
            return [sp.with_roles(sorted(restricted))] if restricted else []
        # Partial overlap: split into refined overlap + untouched rest
        # where the provider scope is enumerable; otherwise refine the
        # whole scope conservatively.
        remainder = self._ddp_difference(sp.ddp, conj)
        if remainder is None:
            self.conservative_refinements += 1
            return [sp.with_roles(sorted(restricted))] if restricted else []
        out: list[SecurityPunctuation] = []
        if restricted:
            out.append(SecurityPunctuation(
                ddp=conj, srp=SecurityRestriction.for_roles(sorted(restricted)),
                sign=sp.sign, immutable=sp.immutable, ts=sp.ts,
                provider=sp.provider,
            ))
        for ddp in remainder:
            out.append(SecurityPunctuation(
                ddp=ddp, srp=sp.srp, sign=sp.sign, immutable=sp.immutable,
                ts=sp.ts, provider=sp.provider,
            ))
        return out

    @staticmethod
    def _provably_disjoint(a: DataDescription, b: DataDescription) -> bool:
        for pa, pb in ((a.stream, b.stream), (a.tuple_id, b.tuple_id),
                       (a.attribute, b.attribute)):
            conj = conjoin_patterns(pa, pb)
            if conjunction_is_empty(conj):
                return True
        return False

    @staticmethod
    def _ddp_difference(whole: DataDescription,
                        part: DataDescription) -> list[DataDescription] | None:
        """``whole − part`` as DDPs, when exactly one field shrank
        and both are enumerable; else ``None``."""
        diffs: list[DataDescription] = []
        changed = 0
        for name in ("stream", "tuple_id", "attribute"):
            wp: Pattern = getattr(whole, name)
            pp: Pattern = getattr(part, name)
            if wp == pp:
                continue
            changed += 1
            if changed > 1:
                return None
            values_w = _enumerable_values(wp)
            values_p = _enumerable_values(pp)
            if values_w is None or values_p is None:
                return None
            rest = values_w - values_p
            if rest:
                kwargs = {"stream": whole.stream,
                          "tuple_id": whole.tuple_id,
                          "attribute": whole.attribute}
                kwargs[name] = one_of(sorted(rest, key=str))
                diffs.append(DataDescription(**kwargs))
        return diffs

    # -- batch processing -----------------------------------------------------
    def process_batch(
        self, sps: Sequence[SecurityPunctuation],
    ) -> list[SecurityPunctuation]:
        """Normalize, refine and combine one arriving sp-batch."""
        self.sps_in += len(sps)
        refined: list[SecurityPunctuation] = []
        ts = sps[0].ts if sps else 0.0
        for sp in sps:
            refined.extend(self._refine(self._normalize(sp)))
        # Negative server sps join the batch (re-stamped to the batch
        # timestamp so they belong to the same policy).
        for server_sp in self._server_sps:
            if not server_sp.is_positive:
                if any(not sp.immutable for sp in sps):
                    refined.append(server_sp.with_ts(ts))
        if not refined and sps and not all(sp.incremental for sp in sps):
            # The whole batch was refined away: nobody may access the
            # upcoming segment.  The boundary must still be announced —
            # silently dropping it would leave the *previous* policy
            # governing the new segment's tuples.  A wildcard negative
            # sp is the explicit "grant nobody" policy.  (An
            # *incremental* batch refined away is a no-op delta: the
            # current policy legitimately stays in force.)
            refined = [SecurityPunctuation(
                ddp=DataDescription(),
                srp=SecurityRestriction(roles=ANY),
                sign=Sign.NEGATIVE,
                ts=ts,
            )]
        combined = combine_batch(refined)
        self.sps_out += len(combined)
        if self._m_batch_size is not None and sps:
            self._m_batch_size.observe(len(sps))
        if self.tracer.enabled:
            self.tracer.span("analyzer.batch", ts=ts, sps_in=len(sps),
                             sps_out=len(combined))
        return combined

    def effective_policy(self, sps: Sequence[SecurityPunctuation]) -> AccessPolicy:
        """The :class:`AccessPolicy` one arriving batch denotes."""
        processed = self.process_batch(sps)
        if not processed:
            # Everything refined away: nobody has access.
            ts = sps[0].ts if sps else 0.0
            return Policy((SecurityPunctuation(
                ddp=DataDescription(), srp=SecurityRestriction(roles=_EMPTY),
                sign=Sign.POSITIVE, ts=ts),))
        return Policy(processed)

    # -- streaming interface ---------------------------------------------------
    def analyze(self, elements: Iterable) -> Iterator:
        """Transform a raw element stream, rewriting sp-batches in place.

        Data tuples pass through untouched; maximal runs of consecutive
        sps are processed as batches (grouped further by timestamp, per
        the sp-batch definition).
        """
        from repro.stream.element import is_punctuation

        pending: list[SecurityPunctuation] = []
        for element in elements:
            if is_punctuation(element):
                if pending and element.ts != pending[-1].ts:
                    yield from self.process_batch(pending)
                    pending = []
                pending.append(element)
            else:
                if pending:
                    yield from self.process_batch(pending)
                    pending = []
                yield element
        if pending:
            yield from self.process_batch(pending)

    def analyze_batched(self, elements: Iterable, *,
                        max_batch: int | None = None) -> Iterator:
        """:meth:`analyze` fused with run coalescing in one generator.

        The single-source execution fast path: instead of stacking
        ``analyze`` and
        :func:`~repro.stream.batch.coalesce_elements` (two generator
        layers, two per-element type dispatches), this yields rewritten
        sp-batches *and* :class:`~repro.stream.batch.TupleBatch` runs
        from one loop.  Batch partitioning (breaks at every sp, at
        ``max_batch`` tuples, singleton runs unwrapped) matches the
        composed form, so feeds are byte-identical.
        """
        from repro.stream.batch import DEFAULT_MAX_BATCH, TupleBatch

        if max_batch is None:
            max_batch = DEFAULT_MAX_BATCH
        # Per-element hot loop: the punctuation test is inlined (no
        # ``is_punctuation`` call frame) and the run-append bound once
        # per run (rebound on flush — ``TupleBatch`` keeps the list by
        # reference, so the run must be a fresh list each time).
        sp_type = SecurityPunctuation
        process_batch = self.process_batch
        pending: list[SecurityPunctuation] = []
        run: list = []
        run_append = run.append
        for element in elements:
            if isinstance(element, sp_type):
                if run:
                    if len(run) == 1:
                        # Singleton runs unwrap to the bare tuple, so
                        # nothing keeps the list — clear and reuse it
                        # (sp-dense feeds flush every element or two).
                        yield run[0]
                        run.clear()
                    else:
                        yield TupleBatch(run)
                        run = []
                        run_append = run.append
                if pending and element.ts != pending[-1].ts:
                    yield from process_batch(pending)
                    pending = []
                pending.append(element)
            else:
                if pending:
                    yield from process_batch(pending)
                    pending = []
                run_append(element)
                if len(run) >= max_batch:
                    if len(run) == 1:
                        yield run[0]
                        run.clear()
                    else:
                        yield TupleBatch(run)
                        run = []
                        run_append = run.append
        # At most one of the two buffers is non-empty here: an sp
        # flushes the tuple run on arrival, a tuple flushes the
        # pending sps.
        if pending:
            yield from self.process_batch(pending)
        if run:
            yield run[0] if len(run) == 1 else TupleBatch(run)
