"""Pattern language for security punctuations.

The paper (Section III.B) describes objects and roles inside security
punctuations with *regular expressions*: ``eval(N, e)`` takes a set of
values ``N`` and an expression ``e`` and returns the subset of ``N``
matching ``e``.  This module implements that mechanism.

Patterns come in a handful of concrete shapes that cover everything the
paper's examples need, while staying cheap to evaluate per element:

* :class:`WildcardPattern` — matches everything (``*``).
* :class:`LiteralPattern` — matches one exact value.
* :class:`SetPattern` — matches a finite set of values.
* :class:`RangePattern` — matches numeric values in ``[low, high]``
  (the paper's "patients with ids between 120 and 133").
* :class:`RegexPattern` — a general regular expression over the string
  form of the value.
* :class:`CompositePattern` — union of sub-patterns.

All patterns are immutable, hashable and comparable, which the policy
layer relies on for cheap policy-equality checks, and all expose:

``matches(value)``
    membership test for a single value, and

``eval(values)``
    the paper's ``eval(N, e)`` — the matching subset, preserving input
    order.

A compact text syntax is supported via :func:`parse_pattern`, used by
the CQL layer::

    *                 wildcard
    120               literal
    {120, 121, 122}   set
    [120-133]         inclusive numeric range
    /^12[0-9]$/       regular expression
    a|b               union of sub-patterns
"""

from __future__ import annotations

import re
from typing import Hashable, Iterable, Sequence

from repro.errors import PatternError

__all__ = [
    "Pattern",
    "WildcardPattern",
    "LiteralPattern",
    "SetPattern",
    "RangePattern",
    "RegexPattern",
    "CompositePattern",
    "ANY",
    "literal",
    "one_of",
    "numeric_range",
    "regex",
    "parse_pattern",
]


class Pattern:
    """Abstract base for punctuation patterns.

    Subclasses must implement :meth:`matches` and :meth:`spec` (the
    canonical text form used for hashing, equality and serialization).
    """

    __slots__ = ()

    def matches(self, value: object) -> bool:
        """Return ``True`` if ``value`` matches this pattern."""
        raise NotImplementedError

    def spec(self) -> str:
        """Canonical text form of this pattern."""
        raise NotImplementedError

    def eval(self, values: Iterable[object]) -> list:
        """The paper's ``eval(N, e)``: subset of ``values`` matching."""
        return [v for v in values if self.matches(v)]

    def is_wildcard(self) -> bool:
        """Whether this pattern matches every possible value."""
        return False

    # Patterns are value objects: equality and hashing go through the
    # canonical spec so that e.g. SetPattern({1, 2}) == SetPattern({2, 1}).
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(self.spec())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec()!r})"

    def __or__(self, other: "Pattern") -> "Pattern":
        """Union of two patterns."""
        if not isinstance(other, Pattern):
            return NotImplemented
        if self.is_wildcard() or other.is_wildcard():
            return ANY
        return CompositePattern((self, other))


class WildcardPattern(Pattern):
    """Matches every value; the ``*`` of the compact syntax."""

    __slots__ = ()

    def matches(self, value: object) -> bool:
        return True

    def spec(self) -> str:
        return "*"

    def is_wildcard(self) -> bool:
        return True

    def eval(self, values: Iterable[object]) -> list:
        return list(values)


#: Shared wildcard instance.
ANY = WildcardPattern()


class LiteralPattern(Pattern):
    """Matches exactly one value.

    Comparison is string-insensitive for convenience: the literal
    ``120`` matches both the integer ``120`` and the string ``"120"``,
    since tuple identifiers may surface either way depending on the
    stream schema.
    """

    __slots__ = ("_value", "_text")

    def __init__(self, value: Hashable):
        self._value = value
        self._text = str(value)

    @property
    def value(self) -> Hashable:
        return self._value

    def matches(self, value: object) -> bool:
        return value == self._value or str(value) == self._text

    def spec(self) -> str:
        return self._text


class SetPattern(Pattern):
    """Matches any value in a finite set."""

    __slots__ = ("_values", "_texts")

    def __init__(self, values: Iterable[Hashable]):
        values = frozenset(values)
        if not values:
            raise PatternError("SetPattern requires at least one value")
        self._values = values
        self._texts = frozenset(str(v) for v in values)

    @property
    def values(self) -> frozenset:
        return self._values

    def matches(self, value: object) -> bool:
        return value in self._values or str(value) in self._texts

    def spec(self) -> str:
        return "{" + ", ".join(sorted(self._texts)) + "}"


class RangePattern(Pattern):
    """Matches numeric values in the inclusive range ``[low, high]``.

    Non-numeric values never match.
    """

    __slots__ = ("_low", "_high")

    def __init__(self, low: float, high: float):
        if low > high:
            raise PatternError(f"empty range [{low}-{high}]")
        self._low = low
        self._high = high

    @property
    def low(self) -> float:
        return self._low

    @property
    def high(self) -> float:
        return self._high

    def matches(self, value: object) -> bool:
        num = _as_number(value)
        if num is None:
            return False
        return self._low <= num <= self._high

    def spec(self) -> str:
        return f"[{_format_number(self._low)}-{_format_number(self._high)}]"


class RegexPattern(Pattern):
    """Matches values whose string form fully matches a regex."""

    __slots__ = ("_source", "_compiled")

    def __init__(self, source: str):
        try:
            self._compiled = re.compile(source)
        except re.error as exc:
            raise PatternError(f"invalid regular expression {source!r}: {exc}") from exc
        self._source = source

    @property
    def source(self) -> str:
        return self._source

    def matches(self, value: object) -> bool:
        return self._compiled.fullmatch(str(value)) is not None

    def spec(self) -> str:
        return f"/{self._source}/"


class CompositePattern(Pattern):
    """Union of sub-patterns: matches if any sub-pattern matches."""

    __slots__ = ("_parts",)

    def __init__(self, parts: Sequence[Pattern]):
        flat: list[Pattern] = []
        for part in parts:
            if isinstance(part, CompositePattern):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            raise PatternError("CompositePattern requires at least one part")
        self._parts = tuple(flat)

    @property
    def parts(self) -> tuple[Pattern, ...]:
        return self._parts

    def matches(self, value: object) -> bool:
        return any(part.matches(value) for part in self._parts)

    def spec(self) -> str:
        return "|".join(sorted(part.spec() for part in self._parts))

    def is_wildcard(self) -> bool:
        return any(part.is_wildcard() for part in self._parts)


def literal(value: Hashable) -> LiteralPattern:
    """Pattern matching exactly ``value``."""
    return LiteralPattern(value)


def one_of(values: Iterable[Hashable]) -> Pattern:
    """Pattern matching any of ``values``; collapses singletons."""
    values = list(values)
    if len(values) == 1:
        return LiteralPattern(values[0])
    return SetPattern(values)


def numeric_range(low: float, high: float) -> RangePattern:
    """Pattern matching numbers in the inclusive range ``[low, high]``."""
    return RangePattern(low, high)


def regex(source: str) -> RegexPattern:
    """Pattern matching values whose string form matches ``source``."""
    return RegexPattern(source)


def parse_pattern(text: str) -> Pattern:
    """Parse the compact pattern syntax described in the module docstring.

    >>> parse_pattern("*").is_wildcard()
    True
    >>> parse_pattern("[120-133]").matches(125)
    True
    >>> parse_pattern("{a, b}").matches("b")
    True
    """
    text = text.strip()
    if not text:
        raise PatternError("empty pattern")
    # Top-level union: split on '|' outside brackets/braces/regex bodies.
    parts = _split_union(text)
    if len(parts) > 1:
        return CompositePattern(tuple(parse_pattern(part) for part in parts))
    return _parse_atom(text)


def _split_union(text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    in_regex = False
    current: list[str] = []
    for ch in text:
        if in_regex:
            current.append(ch)
            if ch == "/":
                in_regex = False
            continue
        if ch == "/" and not current:
            in_regex = True
            current.append(ch)
            continue
        if ch in "[{(":
            depth += 1
        elif ch in "]})":
            depth -= 1
        if ch == "|" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


_RANGE_RE = re.compile(
    r"^\[\s*(-?\d+(?:\.\d+)?)\s*-\s*(-?\d+(?:\.\d+)?)\s*\]$"
)


def _parse_atom(text: str) -> Pattern:
    if text == "*":
        return ANY
    if text.startswith("/") and text.endswith("/") and len(text) >= 2:
        return RegexPattern(text[1:-1])
    if text.startswith("{") and text.endswith("}"):
        inner = text[1:-1].strip()
        if not inner:
            raise PatternError(f"empty set pattern: {text!r}")
        values = [_coerce(v.strip()) for v in inner.split(",")]
        return one_of(values)
    match = _RANGE_RE.match(text)
    if match:
        low = _coerce(match.group(1))
        high = _coerce(match.group(2))
        return RangePattern(float(low), float(high))
    if any(ch in text for ch in "[]{}"):
        raise PatternError(f"malformed pattern: {text!r}")
    return LiteralPattern(_coerce(text))


def _coerce(text: str) -> Hashable:
    """Interpret a token as int, float, or plain string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _as_number(value: object) -> float | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value))
    except (TypeError, ValueError):
        return None


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return str(value)
