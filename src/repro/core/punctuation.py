"""Security punctuations (sps).

A security punctuation (paper Definition 3.1) is meta-data embedded in a
data stream defining an access-control policy on a set of objects:

    < DDP | SRP | Sign | Immutable | ts >

* **DDP** (Data Description Part): which objects the policy applies to,
  expressed as patterns over stream ids, tuple ids and attribute names
  (``es``, ``et``, ``ea``).
* **SRP** (Security Restriction Part): the access-control model type
  (RBAC by default) and the pattern over subjects (roles) authorized.
* **Sign**: ``+`` grants, ``-`` denies (Bertino-style negative
  authorizations).
* **Immutable**: if true, server-side policies may not refine this sp.
* **ts**: when the policy goes into effect.  All sps of one policy
  (an *sp-batch*) share a timestamp; a later policy on the same objects
  overrides an earlier one.

Sps always *precede* the tuples they protect; the tuples between two
consecutive sp-batches form an *s-punctuated segment* sharing the
preceding policy.  If no sp authorizes access to an object,
denial-by-default applies.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.patterns import ANY, Pattern, one_of, parse_pattern
from repro.errors import PunctuationError

__all__ = [
    "Sign",
    "Granularity",
    "DataDescription",
    "SecurityRestriction",
    "SecurityPunctuation",
    "SPBatch",
    "sp_for_roles",
    "RBAC_MODEL",
]

#: The access-control model used throughout the paper's examples.
RBAC_MODEL = "RBAC"

_sp_counter = itertools.count(1)


class Sign(enum.Enum):
    """Whether an sp grants (``+``) or denies (``-``) access."""

    POSITIVE = "+"
    NEGATIVE = "-"

    @classmethod
    def parse(cls, text: str) -> "Sign":
        text = text.strip().lower()
        if text in ("+", "positive", "grant"):
            return cls.POSITIVE
        if text in ("-", "negative", "deny"):
            return cls.NEGATIVE
        raise PunctuationError(f"invalid sign: {text!r}")

    def __str__(self) -> str:
        return self.value


def _split_ddp_fields(text: str) -> list[str]:
    """Split DDP text on commas outside braces/brackets/regex bodies."""
    parts: list[str] = []
    current: list[str] = []
    depth = 0
    in_regex = False
    for ch in text:
        if in_regex:
            current.append(ch)
            if ch == "/":
                in_regex = False
            continue
        if ch == "/" and not "".join(current).strip():
            in_regex = True
            current.append(ch)
            continue
        if ch in "{[":
            depth += 1
        elif ch in "}]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


class Granularity(enum.Enum):
    """Object granularity an sp's DDP addresses (Section III.A)."""

    STREAM = "stream"
    TUPLE = "tuple"
    ATTRIBUTE = "attribute"


@dataclass(frozen=True)
class DataDescription:
    """The DDP: patterns over streams (es), tuples (et), attributes (ea)."""

    stream: Pattern = ANY
    tuple_id: Pattern = ANY
    attribute: Pattern = ANY

    @classmethod
    def parse(cls, text: str) -> "DataDescription":
        """Parse ``"es, et, ea"`` with trailing parts defaulting to ``*``.

        Commas inside ``{...}`` set patterns or ``/.../`` regex bodies
        do not separate DDP fields.
        """
        parts = [p.strip() for p in _split_ddp_fields(text)]
        if not 1 <= len(parts) <= 3:
            raise PunctuationError(f"DDP must have 1-3 parts: {text!r}")
        while len(parts) < 3:
            parts.append("*")
        return cls(
            stream=parse_pattern(parts[0]),
            tuple_id=parse_pattern(parts[1]),
            attribute=parse_pattern(parts[2]),
        )

    def granularity(self) -> Granularity:
        """Finest granularity this DDP constrains."""
        if not self.attribute.is_wildcard():
            return Granularity.ATTRIBUTE
        if not self.tuple_id.is_wildcard():
            return Granularity.TUPLE
        return Granularity.STREAM

    def describes(self, stream_id: object, tuple_id: object = None,
                  attribute: object = None) -> bool:
        """Whether the object identified by the arguments is covered.

        ``tuple_id``/``attribute`` of ``None`` mean "the whole stream" /
        "the whole tuple" and only match wildcard patterns at that level
        when asking about a coarser object than the DDP constrains.
        """
        if not self.stream.matches(stream_id):
            return False
        if tuple_id is None:
            return self.tuple_id.is_wildcard() and self.attribute.is_wildcard()
        if not self.tuple_id.matches(tuple_id):
            return False
        if attribute is None:
            return True
        return self.attribute.matches(attribute)

    def spec(self) -> str:
        return ", ".join(
            (self.stream.spec(), self.tuple_id.spec(), self.attribute.spec())
        )


@dataclass(frozen=True)
class SecurityRestriction:
    """The SRP: access-control model type plus authorized-subject pattern."""

    roles: Pattern
    model_type: str = RBAC_MODEL

    @classmethod
    def for_roles(cls, roles: Iterable[str] | str,
                  model_type: str = RBAC_MODEL) -> "SecurityRestriction":
        """SRP authorizing an explicit set of roles."""
        if isinstance(roles, str):
            roles = (roles,)
        roles = list(roles)
        if not roles:
            raise PunctuationError("SRP requires at least one role")
        srp = cls(roles=one_of(roles), model_type=model_type)
        # The roles are known here; memoize so the hot path never
        # re-enumerates the pattern.
        object.__setattr__(srp, "_concrete_cache",
                           frozenset(str(r) for r in roles))
        return srp

    @classmethod
    def parse(cls, text: str, model_type: str = RBAC_MODEL) -> "SecurityRestriction":
        return cls(roles=parse_pattern(text), model_type=model_type)

    def concrete_roles(self) -> frozenset[str] | None:
        """Explicit role names, or ``None`` if the pattern is open-ended.

        Literal / set / union-of-those patterns enumerate their roles;
        wildcards, ranges and regexes require resolution against a role
        universe (see :meth:`resolve`).
        """
        cached = getattr(self, "_concrete_cache", None)
        if cached is not None:
            return cached
        return _enumerate_pattern(self.roles)

    def resolve(self, all_roles: Iterable[str]) -> frozenset[str]:
        """``eval(R, er)``: the authorized subset of ``all_roles``."""
        concrete = self.concrete_roles()
        if concrete is not None:
            return concrete
        return frozenset(self.roles.eval(all_roles))

    def authorizes(self, role: str) -> bool:
        return self.roles.matches(role)

    def spec(self) -> str:
        return self.roles.spec()


def _enumerate_pattern(pattern: Pattern) -> frozenset[str] | None:
    from repro.core.patterns import (CompositePattern, LiteralPattern,
                                     SetPattern)

    if isinstance(pattern, LiteralPattern):
        return frozenset({str(pattern.value)})
    if isinstance(pattern, SetPattern):
        return frozenset(str(v) for v in pattern.values)
    if isinstance(pattern, CompositePattern):
        out: set[str] = set()
        for part in pattern.parts:
            sub = _enumerate_pattern(part)
            if sub is None:
                return None
            out |= sub
        return frozenset(out)
    return None


@dataclass(frozen=True)
class SecurityPunctuation:
    """One security punctuation: ``<DDP | SRP | Sign | Immutable | ts>``.

    The ``incremental`` flag implements the paper's future-work item
    *incremental access control policies*: an incremental sp-batch does
    not override the current policy but *edits* it — positive sps add
    their roles to the grants in force, negative sps retract theirs —
    so a device can say "additionally admit the ER" or "drop the
    nurse" without restating the whole policy.
    """

    ddp: DataDescription
    srp: SecurityRestriction
    ts: float
    sign: Sign = Sign.POSITIVE
    immutable: bool = False
    #: Originating data provider, used by the SP Analyzer's combination
    #: semantics (union within one provider, intersect across
    #: provider/server).  ``None`` means server-specified.
    provider: str | None = None
    #: Delta semantics: edit the current policy instead of replacing it.
    incremental: bool = False
    sp_id: int = field(default_factory=lambda: next(_sp_counter), compare=False)

    def __post_init__(self) -> None:
        if self.ts is None:
            raise PunctuationError("sp requires a timestamp")

    # -- convenience constructors -------------------------------------
    @classmethod
    def grant(cls, roles: Iterable[str] | str, ts: float, *,
              stream: Pattern = ANY, tuple_id: Pattern = ANY,
              attribute: Pattern = ANY, immutable: bool = False,
              provider: str | None = None,
              incremental: bool = False) -> "SecurityPunctuation":
        """Positive sp authorizing ``roles`` for the described objects."""
        return cls(
            ddp=DataDescription(stream=stream, tuple_id=tuple_id,
                                attribute=attribute),
            srp=SecurityRestriction.for_roles(roles),
            sign=Sign.POSITIVE,
            immutable=immutable,
            ts=ts,
            provider=provider,
            incremental=incremental,
        )

    @classmethod
    def deny(cls, roles: Iterable[str] | str, ts: float, *,
             stream: Pattern = ANY, tuple_id: Pattern = ANY,
             attribute: Pattern = ANY, immutable: bool = False,
             provider: str | None = None,
             incremental: bool = False) -> "SecurityPunctuation":
        """Negative sp denying ``roles`` access to the described objects."""
        sp = cls.grant(roles, ts, stream=stream, tuple_id=tuple_id,
                       attribute=attribute, immutable=immutable,
                       provider=provider, incremental=incremental)
        return sp.with_sign(Sign.NEGATIVE)

    @classmethod
    def add_roles(cls, roles: Iterable[str] | str, ts: float,
                  **kwargs) -> "SecurityPunctuation":
        """Incremental grant: *additionally* admit ``roles``."""
        return cls.grant(roles, ts, incremental=True, **kwargs)

    @classmethod
    def retract_roles(cls, roles: Iterable[str] | str, ts: float,
                      **kwargs) -> "SecurityPunctuation":
        """Incremental denial: remove ``roles`` from the current policy."""
        return cls.deny(roles, ts, incremental=True, **kwargs)

    def with_sign(self, sign: Sign) -> "SecurityPunctuation":
        return SecurityPunctuation(
            ddp=self.ddp, srp=self.srp, ts=self.ts, sign=sign,
            immutable=self.immutable, provider=self.provider,
            incremental=self.incremental,
        )

    def with_ts(self, ts: float) -> "SecurityPunctuation":
        return SecurityPunctuation(
            ddp=self.ddp, srp=self.srp, ts=ts, sign=self.sign,
            immutable=self.immutable, provider=self.provider,
            incremental=self.incremental,
        )

    def with_roles(self, roles: Iterable[str] | str) -> "SecurityPunctuation":
        return SecurityPunctuation(
            ddp=self.ddp, srp=SecurityRestriction.for_roles(roles),
            ts=self.ts, sign=self.sign, immutable=self.immutable,
            provider=self.provider, incremental=self.incremental,
        )

    # -- predicates -----------------------------------------------------
    @property
    def is_positive(self) -> bool:
        return self.sign is Sign.POSITIVE

    def granularity(self) -> Granularity:
        return self.ddp.granularity()

    def describes(self, stream_id: object, tuple_id: object = None,
                  attribute: object = None) -> bool:
        """Whether this sp's DDP covers the given object."""
        return self.ddp.describes(stream_id, tuple_id, attribute)

    def roles(self) -> frozenset[str]:
        """Explicit role names of the SRP (memoized per instance).

        Raises :class:`PunctuationError` for open-ended role patterns;
        those must be resolved against a role universe first (the SP
        Analyzer normalizes arriving sps accordingly).
        """
        cached = getattr(self, "_roles_cache", None)
        if cached is not None:
            return cached
        concrete = self.srp.concrete_roles()
        if concrete is None:
            raise PunctuationError(
                f"sp {self.sp_id} has a non-enumerable role pattern "
                f"{self.srp.spec()!r}; resolve it against a role universe"
            )
        object.__setattr__(self, "_roles_cache", concrete)
        return concrete

    # -- text round trip --------------------------------------------------
    def to_text(self) -> str:
        """Alphanumeric sp format used in the paper's presentation.

        Incremental sps (the future-work extension) carry a sixth
        ``INC`` field; plain sps keep the paper's five-field format.
        Memoized per instance (like :meth:`roles`): every shield that
        sees this sp renders the same governing-sp text into its
        provenance and audit records.
        """
        cached = getattr(self, "_text_cache", None)
        if cached is not None:
            return cached
        base = (
            f"<{self.ddp.spec()} | {self.srp.spec()} | {self.sign.value} | "
            f"{'T' if self.immutable else 'F'} | {self.ts}"
        )
        text = base + (" | INC>" if self.incremental else ">")
        object.__setattr__(self, "_text_cache", text)
        return text

    @classmethod
    def parse(cls, text: str, provider: str | None = None) -> "SecurityPunctuation":
        """Parse the output of :meth:`to_text`."""
        body = text.strip()
        if not (body.startswith("<") and body.endswith(">")):
            raise PunctuationError(f"sp text must be <...>: {text!r}")
        parts = [p.strip() for p in body[1:-1].split("|")]
        incremental = False
        if len(parts) == 6:
            if parts[5].upper() != "INC":
                raise PunctuationError(
                    f"unknown sixth sp field: {parts[5]!r}")
            incremental = True
            parts = parts[:5]
        if len(parts) != 5:
            raise PunctuationError(
                f"sp text must have 5 '|'-separated fields: {text!r}"
            )
        ddp_text, srp_text, sign_text, immutable_text, ts_text = parts
        immutable_text = immutable_text.upper()
        if immutable_text not in ("T", "F", "TRUE", "FALSE"):
            raise PunctuationError(f"invalid Immutable field: {immutable_text!r}")
        try:
            ts = float(ts_text)
        except ValueError:
            raise PunctuationError(f"invalid timestamp: {ts_text!r}") from None
        return cls(
            ddp=DataDescription.parse(ddp_text),
            srp=SecurityRestriction.parse(srp_text),
            sign=Sign.parse(sign_text),
            immutable=immutable_text.startswith("T"),
            ts=ts,
            provider=provider,
            incremental=incremental,
        )

    def __str__(self) -> str:
        return self.to_text()


class SPBatch:
    """A maximal run of consecutive sps with one timestamp (Section III.A).

    A set of consecutive sps sharing a timestamp is interpreted as a
    *single* access-control policy.
    """

    __slots__ = ("_sps",)

    def __init__(self, sps: Sequence[SecurityPunctuation]):
        sps = tuple(sps)
        if not sps:
            raise PunctuationError("sp-batch must contain at least one sp")
        ts = sps[0].ts
        if any(sp.ts != ts for sp in sps):
            raise PunctuationError(
                "all sps in a batch must share one timestamp "
                f"(got {sorted({sp.ts for sp in sps})})"
            )
        self._sps = sps

    @property
    def sps(self) -> tuple[SecurityPunctuation, ...]:
        return self._sps

    @property
    def ts(self) -> float:
        return self._sps[0].ts

    def __iter__(self):
        return iter(self._sps)

    def __len__(self) -> int:
        return len(self._sps)

    def __repr__(self) -> str:
        return f"SPBatch(ts={self.ts}, sps={len(self._sps)})"


def sp_for_roles(roles: Iterable[str] | str, ts: float,
                 **kwargs) -> SecurityPunctuation:
    """Shorthand for the common positive tuple-granularity sp."""
    return SecurityPunctuation.grant(roles, ts, **kwargs)
