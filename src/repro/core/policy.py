"""Access-control policies derived from security punctuations.

Section III.E of the paper defines four operations for manipulating sps
on the server — ``match()``, ``union()``, ``intersect()`` and
``override()`` — and three design choices for preserving correct
security semantics:

* ``union()`` when multiple sps arrive from the *same data provider
  with the same timestamp* (they are one policy, an sp-batch);
* ``intersect()`` when combining data-provider sps with
  *server-specified* sps (the server may refine but never widen
  access);
* ``override()`` when sps arrive from the same provider with *different
  timestamps* (the newer policy replaces the older one for the same
  objects).

Two policy layers are provided:

:class:`AccessPolicy` (with :class:`Policy`, :class:`PolicyIntersection`,
:class:`PolicyUnion`)
    Object-scoped policies: given a concrete object (stream id, tuple
    id, optional attribute), they answer "which roles may access it".
    Denial-by-default: an object no positive sp covers is accessible to
    no one.

:class:`TuplePolicy`
    The *resolved* policy of a concrete tuple — just a role set plus
    the policy timestamp.  This is what sp-aware operators store in
    their windows and intersect during joins / duplicate elimination
    (Table I), and it is independent of patterns, so the hot path never
    re-evaluates regular expressions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.bitmap import AbstractRoleSet, RoleSet
from repro.core.patterns import ANY, Pattern, literal
from repro.core.punctuation import (SecurityPunctuation, Sign, SPBatch)
from repro.errors import PolicyError

__all__ = [
    "AccessPolicy",
    "Policy",
    "PolicyIntersection",
    "PolicyUnion",
    "TuplePolicy",
    "apply_incremental_batch",
    "deny_all_sp",
    "has_attribute_scope",
    "override",
    "policy_from_sps",
    "resolve_tuple_policy",
    "wildcard_policy_roles",
    "EMPTY_POLICY",
]


class AccessPolicy:
    """Object-scoped access policy interface."""

    __slots__ = ()

    @property
    def ts(self) -> float:
        """When the policy went into effect."""
        raise NotImplementedError

    @property
    def immutable(self) -> bool:
        """Whether server policies may refine this policy."""
        raise NotImplementedError

    def authorized_roles(self, stream_id: object, tuple_id: object = None,
                         attribute: object = None) -> frozenset[str]:
        """Roles allowed to access the given object (denial-by-default)."""
        raise NotImplementedError

    def allows(self, role: str, stream_id: object, tuple_id: object = None,
               attribute: object = None) -> bool:
        """Whether ``role`` may access the given object."""
        return role in self.authorized_roles(stream_id, tuple_id, attribute)

    def intersect(self, other: "AccessPolicy") -> "AccessPolicy":
        """Policy allowing access only where both policies allow it."""
        return PolicyIntersection((self, other))

    def union(self, other: "AccessPolicy") -> "AccessPolicy":
        """Policy allowing access where either policy allows it."""
        return PolicyUnion((self, other))

    def resolve_for_tuple(self, stream_id: object,
                          tuple_id: object = None,
                          attribute: object = None) -> "TuplePolicy":
        """Resolve to the concrete :class:`TuplePolicy` of one object."""
        return TuplePolicy(
            RoleSet(self.authorized_roles(stream_id, tuple_id, attribute)),
            ts=self.ts,
        )

    def resolve_for_attributes(self, stream_id: object, tuple_id: object,
                               attributes) -> "TuplePolicy":
        """Policy of a whole tuple under attribute-scoped sps.

        Emitting a tuple exposes *all* its attributes at once, so a
        role may access the tuple only if it is authorized for every
        attribute present: the resolved role set is the intersection
        over the tuple's attributes.  (Project an attribute away first
        if a query should see the rest — Table I's π semantics.)
        """
        roles: frozenset[str] | None = None
        for attribute in attributes:
            authorized = self.authorized_roles(stream_id, tuple_id,
                                               attribute)
            roles = authorized if roles is None else roles & authorized
            if not roles:
                break
        return TuplePolicy(RoleSet(roles or frozenset()), ts=self.ts)


class Policy(AccessPolicy):
    """A leaf policy: the interpretation of one sp-batch.

    The batch's positive sps grant roles on the objects their DDPs
    describe; negative sps subtract roles from objects they describe.
    """

    __slots__ = ("_sps", "_ts", "_immutable")

    def __init__(self, sps: Sequence[SecurityPunctuation]):
        sps = tuple(sps)
        if not sps:
            raise PolicyError("a policy requires at least one sp")
        ts = sps[0].ts
        if any(sp.ts != ts for sp in sps):
            raise PolicyError(
                "all sps of one policy must share a timestamp; "
                "use override() for sps with different timestamps"
            )
        self._sps = sps
        self._ts = ts
        self._immutable = any(sp.immutable for sp in sps)

    @classmethod
    def from_batch(cls, batch: SPBatch) -> "Policy":
        return cls(batch.sps)

    @classmethod
    def from_sp(cls, sp: SecurityPunctuation) -> "Policy":
        return cls((sp,))

    @classmethod
    def granting(cls, roles: Iterable[str] | str, ts: float,
                 **ddp_kwargs) -> "Policy":
        """Convenience: one positive sp for ``roles``."""
        return cls((SecurityPunctuation.grant(roles, ts, **ddp_kwargs),))

    @property
    def sps(self) -> tuple[SecurityPunctuation, ...]:
        return self._sps

    @property
    def ts(self) -> float:
        return self._ts

    @property
    def immutable(self) -> bool:
        return self._immutable

    def matching_sps(self, stream_id: object, tuple_id: object = None,
                     attribute: object = None) -> list[SecurityPunctuation]:
        """``match()``: the sps whose DDP covers the given object."""
        return [sp for sp in self._sps
                if sp.describes(stream_id, tuple_id, attribute)]

    def authorized_roles(self, stream_id: object, tuple_id: object = None,
                         attribute: object = None) -> frozenset[str]:
        granted: set[str] = set()
        for sp in self._sps:
            if sp.is_positive and sp.describes(stream_id, tuple_id, attribute):
                granted |= sp.roles()
        if not granted:
            return frozenset()
        for sp in self._sps:
            if not sp.is_positive and sp.describes(stream_id, tuple_id,
                                                   attribute):
                granted = {r for r in granted if not sp.srp.authorizes(r)}
        return frozenset(granted)

    def union(self, other: AccessPolicy) -> AccessPolicy:
        # Same-timestamp leaf policies merge into a single sp-batch,
        # which is exactly the paper's union() for same-provider sps.
        if isinstance(other, Policy) and other.ts == self.ts:
            return Policy(self._sps + other.sps)
        return PolicyUnion((self, other))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Policy):
            return NotImplemented
        return self._sps == other._sps

    def __hash__(self) -> int:
        return hash(self._sps)

    def __repr__(self) -> str:
        return f"Policy(ts={self._ts}, sps={len(self._sps)})"


class _CompositePolicy(AccessPolicy):
    """Shared structure of intersection/union policy combinators."""

    __slots__ = ("_parts",)

    def __init__(self, parts: Sequence[AccessPolicy]):
        flat: list[AccessPolicy] = []
        for part in parts:
            if type(part) is type(self):
                flat.extend(part._parts)  # type: ignore[attr-defined]
            else:
                flat.append(part)
        if not flat:
            raise PolicyError("composite policy requires at least one part")
        self._parts = tuple(flat)

    @property
    def parts(self) -> tuple[AccessPolicy, ...]:
        return self._parts

    @property
    def ts(self) -> float:
        return max(part.ts for part in self._parts)

    @property
    def immutable(self) -> bool:
        return any(part.immutable for part in self._parts)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._parts == other._parts  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._parts))


class PolicyIntersection(_CompositePolicy):
    """``intersect()``: access allowed only where every part allows it.

    Used to combine data-provider policies with server-specified
    policies — the server can only *reduce* access.
    """

    __slots__ = ()

    def authorized_roles(self, stream_id: object, tuple_id: object = None,
                         attribute: object = None) -> frozenset[str]:
        roles = self._parts[0].authorized_roles(stream_id, tuple_id, attribute)
        for part in self._parts[1:]:
            if not roles:
                break
            roles &= part.authorized_roles(stream_id, tuple_id, attribute)
        return frozenset(roles)

    def __repr__(self) -> str:
        return f"PolicyIntersection({len(self._parts)} parts, ts={self.ts})"


class PolicyUnion(_CompositePolicy):
    """``union()``: access allowed where any part allows it."""

    __slots__ = ()

    def authorized_roles(self, stream_id: object, tuple_id: object = None,
                         attribute: object = None) -> frozenset[str]:
        roles: frozenset[str] = frozenset()
        for part in self._parts:
            roles |= part.authorized_roles(stream_id, tuple_id, attribute)
        return roles

    def __repr__(self) -> str:
        return f"PolicyUnion({len(self._parts)} parts, ts={self.ts})"


def wildcard_policy_roles(policy: AccessPolicy | None) -> frozenset[str] | None:
    """Effective roles of a fully wildcard-scoped leaf policy.

    Returns ``None`` when the policy is absent in that simple form
    (composite, or any sp scoped below stream-wildcard granularity) —
    callers needing incremental-sp semantics use this to detect the
    supported base case.
    """
    if policy is None:
        return frozenset()
    if not isinstance(policy, Policy):
        return None
    for sp in policy.sps:
        ddp = sp.ddp
        if not (ddp.stream.is_wildcard() and ddp.tuple_id.is_wildcard()
                and ddp.attribute.is_wildcard()):
            return None
    return policy.authorized_roles("*")


def apply_incremental_batch(
    current_roles: frozenset[str],
    batch: Sequence[SecurityPunctuation],
) -> list[SecurityPunctuation]:
    """Apply an incremental sp-batch to the roles currently in force.

    Paper future work ("incremental access control policies"): the
    batch *edits* the policy — positive sps add their roles, negative
    sps retract theirs, applied in order.  The result is a normalized
    full replacement batch (one grant sp, or a wildcard deny when
    nobody is left), so downstream consumers never need to know the
    policy arrived as a delta.

    Incremental sps are supported for segment-scoped policies
    (wildcard DDPs) — the granularity of the paper's experiments;
    finer-scoped deltas raise :class:`PolicyError`.
    """
    if not batch:
        raise PolicyError("empty incremental batch")
    roles = set(current_roles)
    ts = batch[0].ts
    provider = batch[0].provider
    for sp in batch:
        ddp = sp.ddp
        if not (ddp.stream.is_wildcard() and ddp.tuple_id.is_wildcard()
                and ddp.attribute.is_wildcard()):
            raise PolicyError(
                "incremental sps require wildcard DDPs "
                "(segment-scoped policies)")
        if sp.is_positive:
            roles |= sp.roles()
        else:
            roles -= sp.roles()
    if roles:
        return [SecurityPunctuation.grant(sorted(roles), ts,
                                          provider=provider)]
    return [deny_all_sp(ts)]


def deny_all_sp(ts: float) -> SecurityPunctuation:
    """The explicit "grant nobody" policy marker (wildcard denial)."""
    from repro.core.patterns import ANY
    from repro.core.punctuation import (DataDescription,
                                        SecurityRestriction)

    return SecurityPunctuation(
        ddp=DataDescription(),
        srp=SecurityRestriction(roles=ANY),
        sign=Sign.NEGATIVE,
        ts=ts,
    )


def has_attribute_scope(policy: AccessPolicy | None) -> bool:
    """Whether any sp of ``policy`` is attribute-granular."""
    if policy is None:
        return False
    if isinstance(policy, Policy):
        return any(not sp.ddp.attribute.is_wildcard() for sp in policy.sps)
    parts = getattr(policy, "parts", None)
    if parts is not None:
        return any(has_attribute_scope(part) for part in parts)
    return True  # unknown policy type: be conservative


def resolve_tuple_policy(policy: AccessPolicy, item) -> TuplePolicy:
    """Resolve the policy of one data tuple, attribute-scope aware."""
    if has_attribute_scope(policy):
        return policy.resolve_for_attributes(item.sid, item.tid,
                                             item.values.keys())
    return policy.resolve_for_tuple(item.sid, item.tid)


def override(old: AccessPolicy | None, new: AccessPolicy) -> AccessPolicy:
    """``override()``: the policy with the more recent timestamp wins.

    Both policies are assumed applicable to the same objects (the
    caller — typically an operator's policy state — guarantees this).
    Ties go to the *new* policy, matching the paper's rule that a policy
    with timestamp ``tsj`` overrides an earlier one with ``tsi < tsj``
    and the streaming convention that later-arriving metadata refreshes
    equal-timestamp state.
    """
    if old is None or new.ts >= old.ts:
        return new
    return old


class TuplePolicy:
    """The resolved access policy of one concrete tuple: a role set.

    Table I's operator semantics (``Pt ∩ p ≠ ∅`` and friends) work on
    this type.  It supports either plain-set or bitmap role encodings
    via :class:`~repro.core.bitmap.AbstractRoleSet`.
    """

    __slots__ = ("_roles", "_ts")

    def __init__(self, roles: AbstractRoleSet | Iterable[str], ts: float = 0.0):
        if not isinstance(roles, AbstractRoleSet):
            roles = RoleSet(roles)
        self._roles = roles
        self._ts = ts

    @property
    def roles(self) -> AbstractRoleSet:
        return self._roles

    @property
    def ts(self) -> float:
        return self._ts

    def is_empty(self) -> bool:
        """A tuple with an empty policy is accessible to no one."""
        return self._roles.is_empty()

    def permits_any(self, predicate: AbstractRoleSet) -> bool:
        """The SS check: ``Pt ∩ p ≠ ∅``."""
        return self._roles.intersects(predicate)

    def intersect(self, other: "TuplePolicy") -> "TuplePolicy":
        """Join semantics: intersection of base-tuple policies."""
        return TuplePolicy(self._roles.intersect(other._roles),
                           ts=max(self._ts, other._ts))

    def union(self, other: "TuplePolicy") -> "TuplePolicy":
        return TuplePolicy(self._roles.union(other._roles),
                           ts=max(self._ts, other._ts))

    def difference(self, other: "TuplePolicy") -> "TuplePolicy":
        """Duplicate-elimination case 3: ``Pnew − (Pold ∩ Pnew)``."""
        return TuplePolicy(self._roles.difference(other._roles), ts=self._ts)

    def to_sp(self, ts: float | None = None, *, stream: Pattern = ANY,
              tuple_id: Pattern = ANY,
              attribute: Pattern = ANY) -> SecurityPunctuation:
        """Materialize this policy as a positive sp for propagation."""
        if self.is_empty():
            raise PolicyError("cannot materialize an empty policy as an sp")
        return SecurityPunctuation.grant(
            sorted(self._roles.names()),
            self._ts if ts is None else ts,
            stream=stream, tuple_id=tuple_id, attribute=attribute,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TuplePolicy):
            return NotImplemented
        return self._roles == other._roles

    def __hash__(self) -> int:
        return hash(self._roles)

    def __repr__(self) -> str:
        return f"TuplePolicy({sorted(self._roles.names())}, ts={self._ts})"


#: The denial-by-default policy: no roles authorized for anything.
EMPTY_POLICY = TuplePolicy(RoleSet(), ts=float("-inf"))


def policy_from_sps(
    sps: Sequence[SecurityPunctuation],
) -> AccessPolicy:
    """Build a policy from a heterogeneous sequence of sps.

    Sps sharing provider *and* timestamp are union-ed (one sp-batch per
    policy); across different timestamps from the same provider the
    newest wins (override); distinct providers' policies are
    intersected, as are server-specified sps — unless a provider sp is
    immutable, in which case server sps are ignored for that policy.
    This mirrors the SP Analyzer's combination pipeline and is exposed
    for direct library use.
    """
    if not sps:
        raise PolicyError("policy_from_sps requires at least one sp")
    by_provider: dict[str | None, list[SecurityPunctuation]] = {}
    for sp in sps:
        by_provider.setdefault(sp.provider, []).append(sp)

    provider_policies: list[AccessPolicy] = []
    server_policy: AccessPolicy | None = None
    immutable_seen = False
    for provider, group in by_provider.items():
        newest_ts = max(sp.ts for sp in group)
        newest = [sp for sp in group if sp.ts == newest_ts]
        policy = Policy(newest)
        if provider is None:
            server_policy = policy
        else:
            provider_policies.append(policy)
            immutable_seen = immutable_seen or policy.immutable

    if not provider_policies:
        if server_policy is None:
            raise PolicyError("no applicable sps")
        return server_policy

    combined: AccessPolicy = provider_policies[0]
    for policy in provider_policies[1:]:
        combined = combined.intersect(policy)
    if server_policy is not None and not immutable_seen:
        combined = combined.intersect(server_policy)
    return combined
