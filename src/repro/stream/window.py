"""Punctuated sliding windows (paper Section V, Figure 6).

Sp-aware stateful operators (SAJoin, duplicate elimination, group-by)
keep their input state in a time-based sliding window in which security
punctuations are interleaved with tuples in chronological order.  The
sps "partition" the tuple list into *s-punctuated segments*: all tuples
of a segment share the policy of the sp-batch that opened it.

The window supports the three steps of the SAJoin algorithm:

1. *Policy collection* — arriving sp-batches open a new segment
   (:meth:`PunctuatedWindow.open_segment`).
2. *Invalidation* — a new tuple's timestamp expires tuples from the
   window head; when every tuple of a segment has been invalidated, the
   segment's sps are purged too (:meth:`PunctuatedWindow.invalidate`).
3. *Join probing* — iteration over live ``(tuple, policy)`` pairs,
   segment by segment (:meth:`PunctuatedWindow.iter_entries`).

Per-segment policies are resolved lazily: a segment whose sps do not
discriminate between tuples (wildcard tuple-id/attribute DDPs — the
common case) shares a single resolved :class:`TuplePolicy` across all
its tuples, which is precisely the memory advantage of the sp model
over tuple-embedded policies.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.core.policy import (EMPTY_POLICY, AccessPolicy, Policy,
                               TuplePolicy, has_attribute_scope)
from repro.core.punctuation import SecurityPunctuation
from repro.errors import StreamError
from repro.stream.tuples import DataTuple

__all__ = ["Segment", "PunctuatedWindow", "CountPunctuatedWindow",
           "policy_is_uniform"]


def policy_is_uniform(policy: AccessPolicy | None, stream_id: str) -> bool:
    """Whether ``policy`` resolves identically for every tuple of a stream.

    True when every sp of the (leaf) policy has wildcard tuple-id and
    attribute patterns, so the authorized role set cannot depend on
    which tuple is asked about.  Composite policies are uniform when
    all their parts are.
    """
    if policy is None:
        return True
    if isinstance(policy, Policy):
        return all(
            sp.ddp.tuple_id.is_wildcard() and sp.ddp.attribute.is_wildcard()
            for sp in policy.sps
        )
    parts = getattr(policy, "parts", None)
    if parts is not None:
        return all(policy_is_uniform(part, stream_id) for part in parts)
    return False


class Segment:
    """One s-punctuated segment: an sp-batch and the tuples it covers."""

    __slots__ = ("access", "sps", "tuples", "_uniform", "_shared",
                 "_cache", "stream_id")

    def __init__(self, stream_id: str, access: AccessPolicy | None,
                 sps: Iterable[SecurityPunctuation] = ()):
        self.stream_id = stream_id
        self.access = access
        self.sps: list[SecurityPunctuation] = list(sps)
        self.tuples: deque[DataTuple] = deque()
        self._uniform = policy_is_uniform(access, stream_id)
        #: Per-sid shared resolution (uniform segments).
        self._shared: dict[str, TuplePolicy] = {}
        self._cache: dict[tuple[str, object], TuplePolicy] = {}

    @property
    def uniform(self) -> bool:
        return self._uniform

    def policy_for(self, item: DataTuple) -> TuplePolicy:
        """Resolved policy of one tuple in this segment (cached).

        Resolution uses the tuple's own ``sid`` so stream-scoped sps
        match correctly even when the window's nominal stream id is a
        placeholder.
        """
        if self.access is None:
            return EMPTY_POLICY
        if self._uniform:
            shared = self._shared.get(item.sid)
            if shared is None:
                shared = self.access.resolve_for_tuple(item.sid)
                self._shared[item.sid] = shared
            return shared
        if has_attribute_scope(self.access):
            key: tuple = (item.sid, item.tid, tuple(item.values))
            cached = self._cache.get(key)
            if cached is None:
                cached = self.access.resolve_for_attributes(
                    item.sid, item.tid, item.values.keys())
                self._cache[key] = cached
            return cached
        key = (item.sid, item.tid)
        cached = self._cache.get(key)
        if cached is None:
            cached = self.access.resolve_for_tuple(item.sid, item.tid)
            self._cache[key] = cached
        return cached

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:
        return (f"Segment(stream={self.stream_id!r}, sps={len(self.sps)}, "
                f"tuples={len(self.tuples)})")


class PunctuatedWindow:
    """Time-based sliding window over a punctuated stream."""

    def __init__(self, stream_id: str, extent: float):
        if extent <= 0:
            raise StreamError("window extent must be positive")
        self.stream_id = stream_id
        self.extent = extent
        self._segments: deque[Segment] = deque()
        #: Running counters used by the cost accounting of Section VI.A.
        self.tuples_inserted = 0
        self.tuples_expired = 0
        self.sps_inserted = 0
        self.sps_purged = 0

    # -- policy collection ---------------------------------------------------
    def open_segment(self, access: AccessPolicy | None,
                     sps: Iterable[SecurityPunctuation] = ()) -> Segment:
        """Start a new s-punctuated segment for an arriving sp-batch."""
        segment = Segment(self.stream_id, access, sps)
        self.sps_inserted += len(segment.sps)
        self._segments.append(segment)
        return segment

    def insert(self, item: DataTuple) -> None:
        """Append a tuple to the current (most recent) segment.

        A tuple arriving before any sp lands in an implicit
        denial-by-default segment (no sp ⇒ nobody has access).
        """
        if not self._segments:
            self._segments.append(Segment(self.stream_id, None))
        self._segments[-1].tuples.append(item)
        self.tuples_inserted += 1

    # -- invalidation ------------------------------------------------------
    def invalidate(self, now: float) -> tuple[int, list[Segment]]:
        """Expire tuples older than ``now - extent`` from the head.

        Returns ``(expired_tuple_count, purged_segments)``.  A
        segment's sps are purged only once all its tuples are gone
        *and* a newer segment exists (the most recent policy must
        survive even with no live tuples, since it governs upcoming
        arrivals).  Purged segments are returned so secondary
        structures (the SPIndex) can drop their entries.
        """
        horizon = now - self.extent
        expired = 0
        purged_segments: list[Segment] = []
        while self._segments:
            segment = self._segments[0]
            while segment.tuples and segment.tuples[0].ts <= horizon:
                segment.tuples.popleft()
                expired += 1
            if not segment.tuples and len(self._segments) > 1:
                purged_segments.append(segment)
                self.sps_purged += len(segment.sps)
                self._segments.popleft()
            else:
                break
        self.tuples_expired += expired
        return expired, purged_segments

    # -- probing -------------------------------------------------------------
    def iter_entries(self) -> Iterator[tuple[DataTuple, TuplePolicy]]:
        """All live ``(tuple, resolved policy)`` pairs, oldest first."""
        for segment in self._segments:
            for item in segment.tuples:
                yield item, segment.policy_for(item)

    def iter_segments(self) -> Iterator[Segment]:
        return iter(self._segments)

    def current_segment(self) -> Segment | None:
        """The segment new tuples would join, if any."""
        return self._segments[-1] if self._segments else None

    # -- accounting ---------------------------------------------------------
    def tuple_count(self) -> int:
        return sum(len(segment.tuples) for segment in self._segments)

    def sp_count(self) -> int:
        return sum(len(segment.sps) for segment in self._segments)

    def segment_count(self) -> int:
        return len(self._segments)

    def __repr__(self) -> str:
        return (f"PunctuatedWindow({self.stream_id!r}, extent={self.extent}, "
                f"segments={len(self._segments)}, "
                f"tuples={self.tuple_count()})")


class CountPunctuatedWindow(PunctuatedWindow):
    """Count-based sliding window: keeps the last ``count`` tuples.

    Shares the segment/policy machinery of the time-based window;
    eviction happens on insertion instead of by timestamp.  Offered as
    the standard count-window alternative of stream engines (the
    paper's experiments use time-based windows throughout).
    """

    def __init__(self, stream_id: str, count: int):
        if count <= 0:
            raise StreamError("window count must be positive")
        # The time-based machinery is reused; extent is irrelevant.
        super().__init__(stream_id, float("inf"))
        self.count = count

    def insert(self, item: DataTuple) -> list[Segment]:
        """Insert and evict; returns segments purged by the eviction."""
        super().insert(item)
        purged: list[Segment] = []
        while self.tuple_count() > self.count:
            head = self._segments[0]
            if head.tuples:
                head.tuples.popleft()
                self.tuples_expired += 1
            if not head.tuples and len(self._segments) > 1:
                purged.append(head)
                self.sps_purged += len(head.sps)
                self._segments.popleft()
        return purged

    def invalidate(self, now: float) -> tuple[int, list[Segment]]:
        """Count windows do not expire by time; nothing to do."""
        return 0, []
