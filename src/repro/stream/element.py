"""Stream elements: the union of data tuples and security punctuations.

A punctuated stream interleaves :class:`~repro.stream.tuples.DataTuple`
and :class:`~repro.core.punctuation.SecurityPunctuation` objects in
timestamp order, sps always preceding the tuples they protect.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.core.punctuation import SecurityPunctuation
from repro.stream.batch import TupleBatch
from repro.stream.tuples import DataTuple

__all__ = [
    "StreamElement",
    "TupleBatch",
    "is_punctuation",
    "is_tuple",
    "element_ts",
    "split_elements",
    "count_elements",
]

StreamElement = Union[DataTuple, SecurityPunctuation]


def is_punctuation(element: StreamElement) -> bool:
    """Whether ``element`` is a security punctuation."""
    return isinstance(element, SecurityPunctuation)


def is_tuple(element: StreamElement) -> bool:
    """Whether ``element`` is a data tuple."""
    return isinstance(element, DataTuple)


def element_ts(element: StreamElement) -> float:
    """Timestamp of any stream element."""
    return element.ts


def split_elements(
    elements: Iterable[StreamElement],
) -> tuple[list[DataTuple], list[SecurityPunctuation]]:
    """Partition elements into (tuples, sps), preserving order."""
    tuples: list[DataTuple] = []
    sps: list[SecurityPunctuation] = []
    for element in elements:
        if isinstance(element, SecurityPunctuation):
            sps.append(element)
        else:
            tuples.append(element)
    return tuples, sps


def count_elements(elements: Iterable[StreamElement]) -> tuple[int, int]:
    """(tuple count, sp count) of an element sequence."""
    n_tuples = n_sps = 0
    for element in elements:
        if isinstance(element, SecurityPunctuation):
            n_sps += 1
        else:
            n_tuples += 1
    return n_tuples, n_sps


def iter_tuples(elements: Iterable[StreamElement]) -> Iterator[DataTuple]:
    """Only the data tuples of an element sequence."""
    for element in elements:
        if not isinstance(element, SecurityPunctuation):
            yield element


def iter_sps(elements: Iterable[StreamElement]) -> Iterator[SecurityPunctuation]:
    """Only the sps of an element sequence."""
    for element in elements:
        if isinstance(element, SecurityPunctuation):
            yield element
