"""Streaming substrate: schemas, tuples, elements, windows, sources."""

from repro.stream.batch import (TupleBatch, coalesce_elements, coalesce_feed)
from repro.stream.columnar import MISSING, ColumnBatch
from repro.stream.element import (StreamElement, count_elements, element_ts,
                                  is_punctuation, is_tuple, iter_sps,
                                  iter_tuples, split_elements)
from repro.stream.ordering import ReorderBuffer, ensure_ordered, reorder
from repro.stream.schema import StreamSchema
from repro.stream.source import (CallbackSource, ListSource, StreamSource,
                                 merge_sources)
from repro.stream.stream import Stream
from repro.stream.tuples import DataTuple
from repro.stream.window import (CountPunctuatedWindow, PunctuatedWindow,
                                 Segment, policy_is_uniform)
from repro.stream.wire import (decode_element, dump_stream, encode_element,
                               load_stream)

__all__ = [
    "CallbackSource",
    "ColumnBatch",
    "CountPunctuatedWindow",
    "DataTuple",
    "MISSING",
    "TupleBatch",
    "decode_element",
    "dump_stream",
    "encode_element",
    "load_stream",
    "ListSource",
    "PunctuatedWindow",
    "ReorderBuffer",
    "Segment",
    "Stream",
    "StreamElement",
    "StreamSchema",
    "StreamSource",
    "coalesce_elements",
    "coalesce_feed",
    "count_elements",
    "element_ts",
    "ensure_ordered",
    "is_punctuation",
    "is_tuple",
    "iter_sps",
    "iter_tuples",
    "merge_sources",
    "policy_is_uniform",
    "reorder",
    "split_elements",
]
