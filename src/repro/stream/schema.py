"""Stream schemas.

A schema names a stream and declares its attributes.  Tuples in the
paper's model are ``t = [sid, tid, A, ts]``; the schema governs ``A``
(the attribute set) and optionally designates which attribute plays the
role of the tuple identifier ``tid`` (e.g. ``Patient_id`` in the
HeartRate stream of Figure 4).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SchemaError

__all__ = ["StreamSchema"]


class StreamSchema:
    """Schema of one data stream."""

    __slots__ = ("_stream_id", "_attributes", "_key", "_positions")

    def __init__(self, stream_id: str, attributes: Iterable[str],
                 key: str | None = None):
        attributes = tuple(attributes)
        if not stream_id:
            raise SchemaError("stream_id must be non-empty")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attributes in schema: {attributes}")
        if key is not None and key not in attributes:
            raise SchemaError(
                f"key attribute {key!r} not among attributes {attributes}"
            )
        self._stream_id = stream_id
        self._attributes = attributes
        self._key = key
        self._positions = {name: i for i, name in enumerate(attributes)}

    @property
    def stream_id(self) -> str:
        return self._stream_id

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    @property
    def key(self) -> str | None:
        """The attribute used as tuple identifier, if any."""
        return self._key

    def position(self, attribute: str) -> int:
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"stream {self._stream_id!r} has no attribute {attribute!r}"
            ) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._positions

    def __len__(self) -> int:
        return len(self._attributes)

    def validate(self, values: Mapping[str, object]) -> None:
        """Raise :class:`SchemaError` unless ``values`` fits the schema."""
        missing = [a for a in self._attributes if a not in values]
        extra = [a for a in values if a not in self._positions]
        if missing or extra:
            raise SchemaError(
                f"tuple does not fit schema {self._stream_id!r}: "
                f"missing={missing}, extra={extra}"
            )

    def project(self, attributes: Iterable[str],
                stream_id: str | None = None) -> "StreamSchema":
        """Schema restricted to ``attributes`` (order follows this schema)."""
        wanted = set(attributes)
        unknown = wanted - set(self._attributes)
        if unknown:
            raise SchemaError(
                f"cannot project unknown attributes {sorted(unknown)} "
                f"from stream {self._stream_id!r}"
            )
        kept = tuple(a for a in self._attributes if a in wanted)
        key = self._key if self._key in wanted else None
        return StreamSchema(stream_id or self._stream_id, kept, key=key)

    def join(self, other: "StreamSchema", stream_id: str) -> "StreamSchema":
        """Concatenated schema for join output; clashes get prefixed."""
        names = list(self._attributes)
        for attr in other.attributes:
            if attr in self._positions:
                names.append(f"{other.stream_id}.{attr}")
            else:
                names.append(attr)
        return StreamSchema(stream_id, names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamSchema):
            return NotImplemented
        return (self._stream_id == other._stream_id
                and self._attributes == other._attributes
                and self._key == other._key)

    def __hash__(self) -> int:
        return hash((self._stream_id, self._attributes, self._key))

    def __repr__(self) -> str:
        return (f"StreamSchema({self._stream_id!r}, {list(self._attributes)},"
                f" key={self._key!r})")
