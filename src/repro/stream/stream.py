"""Stream containers.

A :class:`Stream` is an ordered buffer of stream elements with a schema
— the in-memory representation of a (finite prefix of a) continuous
data stream, used by sources, sinks and tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.punctuation import SecurityPunctuation
from repro.errors import SchemaError, StreamError
from repro.stream.element import StreamElement, count_elements
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

__all__ = ["Stream"]


class Stream:
    """An ordered, schema-checked buffer of tuples and sps."""

    def __init__(self, schema: StreamSchema,
                 elements: Iterable[StreamElement] = (), *,
                 validate: bool = True):
        self.schema = schema
        self._elements: list[StreamElement] = []
        self._validate = validate
        self.extend(elements)

    @property
    def stream_id(self) -> str:
        return self.schema.stream_id

    def append(self, element: StreamElement) -> None:
        if self._validate:
            self._check(element)
        self._elements.append(element)

    def extend(self, elements: Iterable[StreamElement]) -> None:
        for element in elements:
            self.append(element)

    def _check(self, element: StreamElement) -> None:
        if isinstance(element, SecurityPunctuation):
            return
        if not isinstance(element, DataTuple):
            raise StreamError(f"not a stream element: {element!r}")
        if element.sid != self.schema.stream_id:
            raise StreamError(
                f"tuple for stream {element.sid!r} appended to "
                f"stream {self.schema.stream_id!r}"
            )
        try:
            self.schema.validate(element.values)
        except SchemaError:
            raise

    def tuple_count(self) -> int:
        return count_elements(self._elements)[0]

    def sp_count(self) -> int:
        return count_elements(self._elements)[1]

    def elements(self) -> list[StreamElement]:
        """A copy of the buffered elements."""
        return list(self._elements)

    def tuples(self) -> list[DataTuple]:
        return [e for e in self._elements if isinstance(e, DataTuple)]

    def sps(self) -> list[SecurityPunctuation]:
        return [e for e in self._elements
                if isinstance(e, SecurityPunctuation)]

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __getitem__(self, index: int) -> StreamElement:
        return self._elements[index]

    def __repr__(self) -> str:
        n_tuples, n_sps = count_elements(self._elements)
        return (f"Stream({self.schema.stream_id!r}, tuples={n_tuples}, "
                f"sps={n_sps})")
