"""Columnar segment runs: the second physical tuple representation.

The segment-batched engine (:class:`~repro.stream.batch.TupleBatch`)
amortizes *decisions* over a run but still touches every tuple's
attribute dict per operator.  :class:`ColumnBatch` is the columnar
counterpart: the same run of tuples, with per-attribute value arrays
extracted lazily on first access and reused across all operators of a
fused chain (shield → select → project), plus an optional resolved
per-row policy column with its role-bitmap encoding from
:mod:`repro.core.bitmap`.

A :class:`ColumnBatch` is an execution-layer representation only —
exactly like :class:`~repro.stream.batch.TupleBatch` it never crosses a
security punctuation, is immutable by convention, and converts to/from
``TupleBatch`` losslessly at fallback boundaries (order, attribute
values — including attributes explicitly set to ``None`` — and the
policy column all survive the round trip).

Absent attributes are distinguished from present-``None`` values by the
:data:`MISSING` sentinel, mirroring ``DataTuple.values`` exactly:
``Comparison`` treats both as a failed match, but projection must
preserve a present ``None`` while dropping an absent attribute.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.stream.batch import TupleBatch
from repro.stream.tuples import DataTuple

if TYPE_CHECKING:
    from repro.core.bitmap import RoleUniverse
    from repro.core.policy import TuplePolicy

__all__ = ["MISSING", "ColumnBatch"]


class _Missing:
    """Sentinel marking an attribute absent from a tuple (not ``None``)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


#: The single absent-attribute sentinel (identity-comparable).
MISSING = _Missing()


class ColumnBatch:
    """A segment run in columnar layout.

    ``tuples`` remains the row-major source of truth (so conversion
    back to :class:`TupleBatch` is free and lossless); per-attribute
    columns are materialized lazily and cached, and survive
    :meth:`compress` so a fused chain never re-extracts a column it
    already paid for.
    """

    __slots__ = ("tuples", "policies", "_columns")

    def __init__(self, tuples: Sequence[DataTuple], *,
                 policies: "Sequence[TuplePolicy] | None" = None):
        self.tuples: list[DataTuple] = list(tuples) \
            if not isinstance(tuples, list) else tuples
        #: Optional resolved per-row policy column (set by the fused
        #: shield's non-uniform resolver; ``None`` = not resolved).
        self.policies: "list[TuplePolicy] | None" = (
            list(policies) if policies is not None else None)
        self._columns: dict[str, list[object]] = {}

    # -- conversion --------------------------------------------------------
    @classmethod
    def from_batch(cls, batch: TupleBatch) -> "ColumnBatch":
        """Columnar view of a row-major run (no copying of tuples)."""
        return cls(batch.tuples)

    def to_batch(self) -> TupleBatch:
        """Row-major envelope of this run (the fallback boundary)."""
        return TupleBatch(self.tuples)

    # -- basics ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[DataTuple]:
        return iter(self.tuples)

    @property
    def ts(self) -> float:
        """Timestamp of the last tuple (the run's progress mark)."""
        return self.tuples[-1].ts

    def attributes(self) -> frozenset[str]:
        """Union of attribute names present in any row."""
        out: set[str] = set()
        for item in self.tuples:
            out.update(item.values)
        return frozenset(out)

    # -- columns -----------------------------------------------------------
    def column(self, attribute: str) -> list[object]:
        """Per-row values of ``attribute`` (:data:`MISSING` if absent).

        Extracted once per attribute and cached; compiled predicate
        kernels and the projection kernel share the cache.
        """
        cached = self._columns.get(attribute)
        if cached is not None:
            return cached
        try:
            # Optimistic subscript: on the hot path the attribute is
            # present in every row, and ``d[k]`` beats ``d.get(k, …)``
            # (no bound-method call).
            column: list[object] = [item.values[attribute]
                                    for item in self.tuples]
        except KeyError:
            column = [item.values.get(attribute, MISSING)
                      for item in self.tuples]
        self._columns[attribute] = column
        return column

    # -- mask operations ---------------------------------------------------
    def compress(self, mask: Sequence[object]) -> "ColumnBatch":
        """Rows where ``mask`` is truthy, carrying cached columns along."""
        tuples = self.tuples
        kept = [item for item, keep in zip(tuples, mask) if keep]
        out = ColumnBatch(kept)
        for attribute, column in self._columns.items():
            out._columns[attribute] = [
                value for value, keep in zip(column, mask) if keep]
        if self.policies is not None:
            out.policies = [policy for policy, keep
                            in zip(self.policies, mask) if keep]
        return out

    def project(self, attributes: Iterable[str]) -> "ColumnBatch":
        """Rows restricted to ``attributes`` (π over the whole run).

        Result rows are built without re-copying the value dicts twice
        (the ``DataTuple`` constructor's defensive copy is bypassed;
        the fresh comprehension dict is already private).  Cached
        columns of retained attributes carry over.
        """
        attributes = tuple(attributes)
        new_tuple = DataTuple.__new__
        projected: list[DataTuple] = []
        append = projected.append
        for item in self.tuples:
            values = item.values
            row: DataTuple = new_tuple(DataTuple)
            row.sid = item.sid
            row.tid = item.tid
            row.values = {a: values[a] for a in attributes if a in values}
            row.ts = item.ts
            append(row)
        out = ColumnBatch(projected, policies=self.policies)
        columns = self._columns
        for attribute in attributes:
            cached = columns.get(attribute)
            if cached is not None:
                out._columns[attribute] = cached
        return out

    # -- policy column -----------------------------------------------------
    def role_masks(self, universe: "RoleUniverse") -> list[int]:
        """Role-bitmap column: one integer mask per row.

        Requires the resolved policy column; see
        :func:`repro.core.bitmap.bulk_encode` for the encoding.
        """
        if self.policies is None:
            raise ValueError("ColumnBatch has no resolved policy column")
        from repro.core.bitmap import bulk_encode

        return bulk_encode(universe,
                           [policy.roles for policy in self.policies])

    def __repr__(self) -> str:
        tuples = self.tuples
        if not tuples:
            return "ColumnBatch(empty)"
        return (f"ColumnBatch(n={len(tuples)}, "
                f"columns={sorted(self._columns)}, "
                f"ts={tuples[0].ts}..{tuples[-1].ts})")
