"""Segment runs: batched stream elements for vectorized execution.

The paper's central efficiency argument (Figure 8a, Section V.A) is
that an sp-batch's pass/drop decision amortizes over every tuple of
its s-punctuated segment.  :class:`TupleBatch` makes that amortization
explicit in the execution layer: it is a *run* of consecutive data
tuples, all from the same source feed position, with **no intervening
security punctuation** — i.e. a (piece of a) single s-punctuated
segment.  Operators with a native batch path process the run with one
decision / one tight loop instead of one full dispatch per tuple.

A :class:`TupleBatch` is purely an execution-layer envelope:

* it never crosses an sp, so every tuple inside falls under the same
  policy state of any sp-tracking operator;
* it is immutable by convention — operators must never mutate
  ``tuples`` in place (batches may be shared across fan-out edges);
* it is transparent to results — sinks and the element-wise fallback
  unwrap it, so query outputs are identical with and without batching.

:func:`coalesce_feed` lifts a merged ``(stream_id, element)`` feed
into batched form by grouping maximal runs of same-stream tuples.
The grouping never reorders the feed, which is what makes batched and
element-wise execution produce byte-identical results.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.punctuation import SecurityPunctuation
from repro.stream.tuples import DataTuple

__all__ = ["TupleBatch", "coalesce_feed", "coalesce_elements",
           "DEFAULT_MAX_BATCH"]

#: Upper bound on tuples per batch: keeps per-batch latency and peak
#: list sizes bounded on streams with very long segments.
DEFAULT_MAX_BATCH = 4096


class TupleBatch:
    """A run of data tuples governed by one sp-batch (segment run)."""

    __slots__ = ("tuples",)

    def __init__(self, tuples: list[DataTuple]):
        self.tuples = tuples

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[DataTuple]:
        return iter(self.tuples)

    @property
    def ts(self) -> float:
        """Timestamp of the last tuple (the run's progress mark)."""
        return self.tuples[-1].ts

    def __repr__(self) -> str:
        tuples = self.tuples
        if not tuples:
            return "TupleBatch(empty)"
        return (f"TupleBatch(n={len(tuples)}, "
                f"ts={tuples[0].ts}..{tuples[-1].ts})")


def coalesce_feed(
    feed: Iterable[tuple[str, "DataTuple | SecurityPunctuation"]],
    *, max_batch: int = DEFAULT_MAX_BATCH,
) -> Iterator[tuple[str, object]]:
    """Group maximal same-stream tuple runs of ``feed`` into batches.

    ``feed`` yields ``(stream_id, element)`` pairs in execution order
    (the contract of :func:`~repro.stream.source.merge_sources`).  A
    run breaks at every security punctuation, at every stream switch,
    and at ``max_batch`` tuples.  Single-tuple runs are passed through
    unwrapped — batching them would only add envelope overhead.
    """
    run: list[DataTuple] = []
    run_sid: str | None = None
    for stream_id, element in feed:
        if isinstance(element, SecurityPunctuation):
            if run:
                yield (run_sid, run[0] if len(run) == 1
                       else TupleBatch(run))
                run = []
            yield stream_id, element
            continue
        if run and (stream_id != run_sid or len(run) >= max_batch):
            yield (run_sid, run[0] if len(run) == 1
                   else TupleBatch(run))
            run = []
        if not run:
            run_sid = stream_id
        run.append(element)
    if run:
        yield (run_sid, run[0] if len(run) == 1 else TupleBatch(run))


def coalesce_elements(
    elements: Iterable["DataTuple | SecurityPunctuation"],
    *, max_batch: int = DEFAULT_MAX_BATCH,
) -> Iterator[object]:
    """Group maximal tuple runs of a *single-stream* element feed.

    The one-source counterpart of :func:`coalesce_feed`: no
    ``(stream_id, element)`` pairing, no stream-switch breaks — the
    executor's single-source fast path batches the raw element stream
    with a single generator layer instead of stacking the merge and
    coalesce generators (the overhead that put sp-dense workloads,
    one tuple per sp, *below* element-wise throughput).  Run breaks
    and the single-tuple unwrap rule are identical to
    :func:`coalesce_feed`, so both paths produce byte-identical feeds.
    """
    run: list[DataTuple] = []
    for element in elements:
        if isinstance(element, SecurityPunctuation):
            if run:
                yield run[0] if len(run) == 1 else TupleBatch(run)
                run = []
            yield element
            continue
        run.append(element)
        if len(run) >= max_batch:
            yield run[0] if len(run) == 1 else TupleBatch(run)
            run = []
    if run:
        yield run[0] if len(run) == 1 else TupleBatch(run)
