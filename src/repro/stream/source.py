"""Stream sources and timestamp-order merging.

A :class:`StreamSource` feeds one input stream of a query plan.  The
executor pulls elements from all registered sources in global
timestamp order via :func:`merge_sources`, which is how a centralized
DSMS sees interleaved arrivals from many data providers.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator

from repro.stream.element import StreamElement
from repro.stream.schema import StreamSchema
from repro.stream.stream import Stream

__all__ = ["StreamSource", "ListSource", "CallbackSource", "merge_sources"]


class StreamSource:
    """Abstract source of one input stream."""

    def __init__(self, schema: StreamSchema):
        self.schema = schema

    @property
    def stream_id(self) -> str:
        return self.schema.stream_id

    def __iter__(self) -> Iterator[StreamElement]:
        raise NotImplementedError


class ListSource(StreamSource):
    """Source over a pre-materialized element sequence."""

    def __init__(self, schema: StreamSchema,
                 elements: Iterable[StreamElement]):
        super().__init__(schema)
        self._elements = list(elements)

    @classmethod
    def from_stream(cls, stream: Stream) -> "ListSource":
        return cls(stream.schema, stream.elements())

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)


class CallbackSource(StreamSource):
    """Source over a generator factory, re-iterable."""

    def __init__(self, schema: StreamSchema,
                 factory: Callable[[], Iterable[StreamElement]]):
        super().__init__(schema)
        self._factory = factory

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._factory())


def merge_sources(
    sources: Iterable[StreamSource],
) -> Iterator[tuple[str, StreamElement]]:
    """Merge sources into one (stream_id, element) feed in ts order.

    The merge is stable: within one source, element order is preserved
    (so sps keep preceding their tuples), and timestamp ties across
    sources are broken by source registration order, making executions
    deterministic and therefore testable.
    """
    sources = list(sources)
    if len(sources) == 1:
        # Single-source fast path: nothing to merge, skip the heap.
        (source,) = sources
        stream_id = source.stream_id
        for element in source:
            yield stream_id, element
        return
    iterators: list[tuple[int, str, Iterator[StreamElement]]] = [
        (index, source.stream_id, iter(source))
        for index, source in enumerate(sources)
    ]
    heap: list[tuple[float, int, int, str, StreamElement,
                     Iterator[StreamElement]]] = []
    seq = 0
    for index, stream_id, iterator in iterators:
        element = next(iterator, None)
        if element is not None:
            heap.append((element.ts, index, seq, stream_id, element, iterator))
            seq += 1
    heapq.heapify(heap)
    while heap:
        ts, index, _, stream_id, element, iterator = heapq.heappop(heap)
        yield stream_id, element
        nxt = next(iterator, None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.ts, index, seq, stream_id, nxt,
                                  iterator))
            seq += 1
