"""Stream ordering utilities.

The paper assumes (Section II.B) that timestamps of stream elements are
ordered and that sps likewise arrive in order, noting that out-of-order
arrival can be handled with the standard techniques of the windowing
literature.  This module provides both:

* :func:`ensure_ordered` — a checking pass that raises on violations,
  used by tests and by sources in strict mode; and
* :class:`ReorderBuffer` — a bounded-slack reordering buffer that
  restores order for elements at most ``slack`` time units late,
  the common "out-of-order handled as in prior work" substitute.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, Iterator

from repro.errors import OutOfOrderError
from repro.stream.element import StreamElement

__all__ = ["ensure_ordered", "ReorderBuffer", "reorder"]


def ensure_ordered(elements: Iterable[StreamElement]) -> Iterator[StreamElement]:
    """Yield elements, raising :class:`OutOfOrderError` on regressions."""
    last_ts: float | None = None
    for element in elements:
        if last_ts is not None and element.ts < last_ts:
            raise OutOfOrderError(
                f"element at ts={element.ts} arrived after ts={last_ts}"
            )
        last_ts = element.ts
        yield element


class ReorderBuffer:
    """Bounded-slack reordering.

    Elements are buffered until the maximum timestamp seen exceeds
    their own by more than ``slack``; they are then released in
    timestamp order.  Elements later than the slack allows are dropped
    (and counted), matching load-shedding practice for hopelessly late
    arrivals.

    Ties are released in arrival order, which keeps the sp-before-tuple
    convention intact for same-timestamp batches.
    """

    def __init__(self, slack: float):
        if slack < 0:
            raise ValueError("slack must be non-negative")
        self.slack = slack
        self._heap: list[tuple[float, int, StreamElement]] = []
        self._counter = itertools.count()
        self._max_ts = float("-inf")
        self._released_ts = float("-inf")
        self.dropped = 0

    def push(self, element: StreamElement) -> list[StreamElement]:
        """Insert one element; return elements now safe to release."""
        if element.ts < self._released_ts:
            self.dropped += 1
            return []
        self._max_ts = max(self._max_ts, element.ts)
        heapq.heappush(self._heap, (element.ts, next(self._counter), element))
        return self._drain(self._max_ts - self.slack)

    def flush(self) -> list[StreamElement]:
        """Release everything still buffered, in order."""
        return self._drain(float("inf"))

    def _drain(self, up_to: float) -> list[StreamElement]:
        out: list[StreamElement] = []
        while self._heap and self._heap[0][0] <= up_to:
            ts, _, element = heapq.heappop(self._heap)
            self._released_ts = max(self._released_ts, ts)
            out.append(element)
        return out

    def __len__(self) -> int:
        return len(self._heap)


def reorder(elements: Iterable[StreamElement],
            slack: float) -> Iterator[StreamElement]:
    """Reorder an element sequence with bounded slack (see above)."""
    buffer = ReorderBuffer(slack)
    for element in elements:
        yield from buffer.push(element)
    yield from buffer.flush()
