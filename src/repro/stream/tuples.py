"""Data tuples.

Tuples in the stream have the form ``t = [sid, tid, A, ts]`` (paper
Section II.B): ``sid`` is the stream identifier, ``tid`` the tuple
identifier (similar to a primary key — e.g. a patient id), ``A`` the
attribute values and ``ts`` the timestamp.  Timestamps of stream
elements are assumed ordered.

Tuples are deliberately unaware of security punctuations: all policy
state lives in the operators, never on the tuple (that is the whole
point of the punctuation-based approach versus the tuple-embedded
baseline in :mod:`repro.baselines.tuple_embedded`).
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["DataTuple"]


def _rebuild(sid: str, tid: object, values: dict,
             ts: float) -> "DataTuple":
    """Unpickle fast path — the dict arrives fresh, skip the copy."""
    tup = DataTuple.__new__(DataTuple)
    tup.sid = sid
    tup.tid = tid
    tup.values = values
    tup.ts = ts
    return tup


class DataTuple:
    """One data tuple: ``[sid, tid, A, ts]``."""

    __slots__ = ("sid", "tid", "values", "ts")

    def __init__(self, sid: str, tid: object, values: Mapping[str, object],
                 ts: float):
        self.sid = sid
        self.tid = tid
        self.values = dict(values)
        self.ts = ts

    def __reduce__(self):
        # Generic slotted-object pickling builds a per-object state
        # dict and replays it through ``__setstate__``; shard workers
        # stream whole result sets over pipes, where that protocol is
        # the dominant IPC cost.  A plain constructor tuple roughly
        # halves both pickling directions.
        return (_rebuild, (self.sid, self.tid, self.values, self.ts))

    def __getitem__(self, attribute: str) -> object:
        return self.values[attribute]

    def get(self, attribute: str, default: object = None) -> object:
        return self.values.get(attribute, default)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.values

    def attributes(self) -> tuple[str, ...]:
        return tuple(self.values)

    def project(self, attributes) -> "DataTuple":
        """New tuple keeping only ``attributes`` (same sid/tid/ts)."""
        return DataTuple(
            self.sid, self.tid,
            {a: self.values[a] for a in attributes if a in self.values},
            self.ts,
        )

    def merge(self, other: "DataTuple", sid: str) -> "DataTuple":
        """Join-result tuple: union of attributes, other's clashes prefixed.

        The result timestamp is the max of the inputs, per the usual
        sliding-window join convention; the tid pairs both tids.
        """
        values = dict(self.values)
        for attr, value in other.values.items():
            if attr in values:
                values[f"{other.sid}.{attr}"] = value
            else:
                values[attr] = value
        return DataTuple(sid, (self.tid, other.tid), values,
                         max(self.ts, other.ts))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataTuple):
            return NotImplemented
        return (self.sid == other.sid and self.tid == other.tid
                and self.ts == other.ts and self.values == other.values)

    def __hash__(self) -> int:
        return hash((self.sid, self.tid, self.ts,
                     tuple(sorted(self.values.items(), key=lambda kv: kv[0]))))

    def __repr__(self) -> str:
        return (f"DataTuple(sid={self.sid!r}, tid={self.tid!r}, "
                f"values={self.values!r}, ts={self.ts})")
