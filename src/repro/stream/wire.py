"""Wire format for punctuated streams.

Data providers transmit tuples and sps to the DSMS over a network; the
paper notes sps "can be encoded into a compact format, and in most
cases can be included into the same network message with the data".
This module provides a JSON-lines wire format for both element kinds,
with loss-less round-tripping of everything the engine uses:

* tuples: ``{"k": "t", "sid": ..., "tid": ..., "v": {...}, "ts": ...}``
* sps: ``{"k": "sp", "sp": "<ddp | srp | sign | imm | ts>",
  "p": provider}`` — the sp body reuses the paper's alphanumeric
  format via :meth:`SecurityPunctuation.to_text`.

``dump_stream``/``load_stream`` handle files or iterables of lines, so
a provider process can pipe its punctuated stream into the server with
nothing but line-buffered text.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator

from repro.core.punctuation import SecurityPunctuation
from repro.errors import StreamError
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["encode_element", "decode_element", "dump_stream", "load_stream"]


def encode_element(element: StreamElement) -> str:
    """One wire line for one stream element."""
    if isinstance(element, SecurityPunctuation):
        record = {"k": "sp", "sp": element.to_text()}
        if element.provider is not None:
            record["p"] = element.provider
        return json.dumps(record, separators=(",", ":"))
    if isinstance(element, DataTuple):
        return json.dumps(
            {"k": "t", "sid": element.sid, "tid": _jsonable(element.tid),
             "v": element.values, "ts": element.ts},
            separators=(",", ":"))
    raise StreamError(f"not a stream element: {element!r}")


def _jsonable(tid: object) -> object:
    if isinstance(tid, tuple):
        return list(tid)
    return tid


def decode_element(line: str) -> StreamElement:
    """Parse one wire line back into a stream element."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StreamError(f"malformed wire line: {line!r}") from exc
    kind = record.get("k")
    if kind == "sp":
        return SecurityPunctuation.parse(record["sp"],
                                         provider=record.get("p"))
    if kind == "t":
        tid = record["tid"]
        if isinstance(tid, list):
            tid = tuple(tid)
        return DataTuple(record["sid"], tid, record["v"],
                         float(record["ts"]))
    raise StreamError(f"unknown wire element kind: {kind!r}")


def dump_stream(elements: Iterable[StreamElement], fp: IO[str]) -> int:
    """Write elements as JSON lines; returns the element count."""
    count = 0
    for element in elements:
        fp.write(encode_element(element))
        fp.write("\n")
        count += 1
    return count


def load_stream(lines: Iterable[str]) -> Iterator[StreamElement]:
    """Read elements from JSON lines (a file object works directly)."""
    for line in lines:
        line = line.strip()
        if line:
            yield decode_element(line)
