"""Tokenizer for the CQL subset with SP extensions."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CQLSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset({
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT",
    "GROUP", "BY", "RANGE", "AS", "INSERT", "SP", "INTO", "STREAM",
    "LET", "DDP", "SRP", "SIGN", "IMMUTABLE", "TIMESTAMP",
    "INCREMENTAL", "UNION",
    "POSITIVE", "NEGATIVE", "TRUE", "FALSE",
})


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


_OPS = ("<=", ">=", "!=", "<>", "==", "=", "<", ">")
_PUNCT = ",().*"


def tokenize(text: str) -> list[Token]:
    """Tokenize a CQL statement; raises on unexpected characters."""
    tokens: list[Token] = []
    line, column = 1, 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch in ("'", '"'):
            j = text.find(ch, i + 1)
            if j < 0:
                raise CQLSyntaxError("unterminated string literal",
                                     line, column)
            tokens.append(Token(TokenType.STRING, text[i + 1:j],
                                line, column))
            column += j + 1 - i
            i = j + 1
            continue
        matched_op = next((op for op in _OPS if text.startswith(op, i)), None)
        if matched_op:
            tokens.append(Token(TokenType.OP, matched_op, line, column))
            i += len(matched_op)
            column += len(matched_op)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, line, column))
            i += 1
            column += 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit()
                             or (text[j] == "." and not seen_dot)):
                seen_dot = seen_dot or text[j] == "."
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_."):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, line, column))
            else:
                tokens.append(Token(TokenType.IDENT, word, line, column))
            column += j - i
            i = j
            continue
        raise CQLSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
