"""Abstract syntax trees for the CQL subset with SP extensions."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SelectItem",
    "UnionStatement",
    "AggregateItem",
    "StreamRef",
    "ComparisonAST",
    "LogicalAST",
    "NotAST",
    "SelectStatement",
    "InsertSPStatement",
]


@dataclass(frozen=True)
class SelectItem:
    """A plain column in the SELECT list (``*`` has column ``"*"``)."""

    column: str


@dataclass(frozen=True)
class AggregateItem:
    """``agg(column)`` in the SELECT list."""

    func: str
    column: str


@dataclass(frozen=True)
class StreamRef:
    """``FROM stream [RANGE w] [AS alias]``."""

    name: str
    window: float | None = None
    alias: str | None = None


@dataclass(frozen=True)
class ComparisonAST:
    """``lhs <op> rhs``; rhs is a literal or a (possibly dotted) column."""

    lhs: str
    op: str
    rhs: object
    rhs_is_column: bool = False


@dataclass(frozen=True)
class LogicalAST:
    """AND/OR of sub-predicates."""

    op: str  # "AND" | "OR"
    parts: tuple


@dataclass(frozen=True)
class NotAST:
    inner: object


@dataclass
class SelectStatement:
    """``SELECT [DISTINCT] items FROM streams [WHERE ...] [GROUP BY ...]``."""

    items: list
    streams: list[StreamRef]
    where: object | None = None
    group_by: str | None = None
    distinct: bool = False


@dataclass
class InsertSPStatement:
    """The paper's ``INSERT SP`` declaration (Section III.D)."""

    stream: str
    ddp: str
    srp: str
    sp_name: str | None = None
    sign: str = "positive"
    immutable: bool = False
    incremental: bool = False
    timestamp: float | None = None
    lets: dict = field(default_factory=dict)


@dataclass
class UnionStatement:
    """``SELECT ... UNION SELECT ...`` — bag union of query results."""

    parts: list
