"""CQL subset with the paper's INSERT SP extension (Section III.D)."""

from repro.cql.ast import (AggregateItem, ComparisonAST, InsertSPStatement,
                           LogicalAST, NotAST, SelectItem, SelectStatement,
                           StreamRef)
from repro.cql.lexer import Token, TokenType, tokenize
from repro.cql.parser import parse, parse_insert_sp, parse_select
from repro.cql.translator import (compile_statement, translate_insert_sp,
                                  translate_select)

__all__ = [
    "AggregateItem",
    "ComparisonAST",
    "InsertSPStatement",
    "LogicalAST",
    "NotAST",
    "SelectItem",
    "SelectStatement",
    "StreamRef",
    "Token",
    "TokenType",
    "compile_statement",
    "parse",
    "parse_insert_sp",
    "parse_select",
    "tokenize",
    "translate_insert_sp",
    "translate_select",
]
