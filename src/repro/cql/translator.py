"""Translate CQL ASTs into logical plans and security punctuations."""

from __future__ import annotations

from repro.algebra.expressions import (DupElimExpr, GroupByExpr, JoinExpr,
                                       LogicalExpr, ProjectExpr, ScanExpr,
                                       SelectExpr, UnionExpr)
from repro.cql.ast import (AggregateItem, ComparisonAST, InsertSPStatement,
                           LogicalAST, NotAST, SelectItem, SelectStatement,
                           UnionStatement)
from repro.cql.parser import parse
from repro.core.punctuation import (DataDescription, SecurityPunctuation,
                                    SecurityRestriction, Sign)
from repro.errors import CQLSyntaxError
from repro.operators.conditions import (And, Comparison, Condition, Not, Or)

__all__ = ["translate_select", "translate_insert_sp", "compile_statement"]

#: Default window for windowed operators when RANGE is omitted.
DEFAULT_WINDOW = 1000.0


def _condition(ast) -> Condition:
    if isinstance(ast, ComparisonAST):
        return Comparison(ast.lhs, ast.op, ast.rhs,
                          rhs_attribute=ast.rhs_is_column)
    if isinstance(ast, LogicalAST):
        parts = [_condition(p) for p in ast.parts]
        return And(parts) if ast.op == "AND" else Or(parts)
    if isinstance(ast, NotAST):
        return Not(_condition(ast.inner))
    raise CQLSyntaxError(f"unsupported predicate node: {ast!r}")


def _split_join_predicates(ast, left_ref, right_ref):
    """Separate cross-stream equality predicates from local ones."""

    def is_join_eq(node) -> bool:
        return (isinstance(node, ComparisonAST) and node.rhs_is_column
                and node.op in ("=", "=="))

    join_pairs: list[tuple[str, str]] = []
    local: list = []

    def strip_alias(name: str) -> tuple[str | None, str]:
        if "." in name:
            prefix, _, col = name.partition(".")
            return prefix, col
        return None, name

    def classify(node) -> None:
        if isinstance(node, LogicalAST) and node.op == "AND":
            for part in node.parts:
                classify(part)
            return
        if is_join_eq(node):
            lhs_alias, lhs_col = strip_alias(node.lhs)
            rhs_alias, rhs_col = strip_alias(str(node.rhs))
            left_names = {left_ref.alias, left_ref.name}
            right_names = {right_ref.alias, right_ref.name}
            if lhs_alias in left_names and rhs_alias in right_names:
                join_pairs.append((lhs_col, rhs_col))
                return
            if lhs_alias in right_names and rhs_alias in left_names:
                join_pairs.append((rhs_col, lhs_col))
                return
            if lhs_alias is None and rhs_alias is None:
                join_pairs.append((lhs_col, rhs_col))
                return
        local.append(node)

    if ast is not None:
        classify(ast)
    return join_pairs, local


def translate_select(statement: SelectStatement) -> LogicalExpr:
    """SELECT statement → logical plan (shield added at registration)."""
    if not statement.streams:
        raise CQLSyntaxError("SELECT requires at least one stream")
    if len(statement.streams) > 2:
        raise CQLSyntaxError("at most two streams are supported")

    if len(statement.streams) == 1:
        ref = statement.streams[0]
        expr: LogicalExpr = ScanExpr(ref.name)
        condition = (_condition(statement.where)
                     if statement.where is not None else None)
        if condition is not None:
            expr = SelectExpr(expr, condition)
        window = ref.window if ref.window is not None else DEFAULT_WINDOW
    else:
        left_ref, right_ref = statement.streams
        join_pairs, local = _split_join_predicates(
            statement.where, left_ref, right_ref)
        if not join_pairs:
            raise CQLSyntaxError(
                "two-stream queries require an equality join predicate")
        left_on, right_on = join_pairs[0]
        window = (left_ref.window if left_ref.window is not None
                  else DEFAULT_WINDOW)
        expr = JoinExpr(ScanExpr(left_ref.name), ScanExpr(right_ref.name),
                        left_on, right_on, window)
        if len(join_pairs) > 1:
            extra = [ComparisonAST(a, "=", b, rhs_is_column=True)
                     for a, b in join_pairs[1:]]
            local = extra + local
        if local:
            conditions = [_condition(node) for node in local]
            expr = SelectExpr(expr, conditions[0] if len(conditions) == 1
                              else And(conditions))

    aggregates = [item for item in statement.items
                  if isinstance(item, AggregateItem)]
    plain = [item.column for item in statement.items
             if isinstance(item, SelectItem)]

    if aggregates:
        if len(aggregates) > 1:
            raise CQLSyntaxError("one aggregate per query is supported")
        agg = aggregates[0]
        key = statement.group_by
        column = agg.column if agg.column != "*" else (key or "*")
        return GroupByExpr(expr, key, agg.func, column, window)
    if statement.group_by is not None:
        raise CQLSyntaxError("GROUP BY requires an aggregate select item")

    if plain and "*" not in plain:
        expr = ProjectExpr(expr, tuple(plain))
    if statement.distinct:
        attributes = tuple(plain) if plain and "*" not in plain else None
        expr = DupElimExpr(expr, window, attributes)
    return expr


def translate_insert_sp(statement: InsertSPStatement,
                        provider: str | None = None,
                        default_ts: float = 0.0) -> SecurityPunctuation:
    """INSERT SP statement → a security punctuation for the stream."""
    ddp = DataDescription.parse(statement.ddp)
    if ddp.stream.is_wildcard() and statement.stream != "*":
        from repro.core.patterns import literal
        ddp = DataDescription(stream=literal(statement.stream),
                              tuple_id=ddp.tuple_id,
                              attribute=ddp.attribute)
    srp = SecurityRestriction.parse(statement.srp)
    ts = (statement.timestamp if statement.timestamp is not None
          else default_ts)
    return SecurityPunctuation(
        ddp=ddp,
        srp=srp,
        sign=Sign.parse(statement.sign),
        immutable=bool(statement.immutable),
        ts=ts,
        provider=provider,
        incremental=bool(statement.incremental),
    )


def translate_union(statement: UnionStatement) -> LogicalExpr:
    """UNION of SELECT statements → left-deep tree of ∪ operators."""
    parts = [translate_select(part) for part in statement.parts]
    expr = parts[0]
    for part in parts[1:]:
        expr = UnionExpr(expr, part)
    return expr


def compile_statement(text: str, *, provider: str | None = None,
                      default_ts: float = 0.0):
    """Parse and translate one statement.

    Returns a :class:`LogicalExpr` for SELECT/UNION statements or a
    :class:`SecurityPunctuation` for INSERT SP statements.
    """
    statement = parse(text)
    if isinstance(statement, SelectStatement):
        return translate_select(statement)
    if isinstance(statement, UnionStatement):
        return translate_union(statement)
    assert isinstance(statement, InsertSPStatement)
    return translate_insert_sp(statement, provider, default_ts)
