"""Recursive-descent parser for the CQL subset with SP extensions.

Supported statements::

    SELECT [DISTINCT] col1, col2 | * | agg(col)
    FROM stream1 [RANGE w] [AS a] [, stream2 [RANGE w] [AS b]]
    [WHERE predicate [AND|OR predicate]...]
    [GROUP BY col]

    INSERT SP [AS name] INTO STREAM stream_id
    LET DDP = 'es, et, ea', SRP = 'roles'
        [, SIGN = POSITIVE|NEGATIVE]
        [, IMMUTABLE = TRUE|FALSE]
        [, TIMESTAMP = ts]

The query syntax is deliberately unchanged from plain CQL — the paper
infers query roles from the registering subject, so nothing
security-specific appears in SELECT statements.
"""

from __future__ import annotations

from repro.cql.ast import (AggregateItem, ComparisonAST, InsertSPStatement,
                           LogicalAST, NotAST, SelectItem, SelectStatement,
                           StreamRef, UnionStatement)
from repro.cql.lexer import Token, TokenType, tokenize
from repro.errors import CQLSyntaxError

__all__ = ["parse", "parse_select", "parse_insert_sp"]

_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers ------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def error(self, message: str) -> CQLSyntaxError:
        token = self.peek()
        return CQLSyntaxError(f"{message} (got {token.value!r})",
                              token.line, token.column)

    def expect_keyword(self, word: str) -> Token:
        token = self.next()
        if not token.is_keyword(word):
            self.pos -= 1
            raise self.error(f"expected {word}")
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.pos += 1
            return True
        return False

    def accept_punct(self, value: str) -> bool:
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value == value:
            self.pos += 1
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise self.error(f"expected {value!r}")

    def expect_ident(self) -> str:
        token = self.next()
        if token.type is not TokenType.IDENT:
            self.pos -= 1
            raise self.error("expected identifier")
        return token.value

    def expect_op(self) -> str:
        token = self.next()
        if token.type is not TokenType.OP:
            self.pos -= 1
            raise self.error("expected comparison operator")
        return token.value

    # -- statements ------------------------------------------------------------
    def parse_statement(self):
        if self.peek().is_keyword("SELECT"):
            statement = self.parse_select(top_level=False)
            parts = [statement]
            while self.accept_keyword("UNION"):
                parts.append(self.parse_select(top_level=False))
            self._expect_eof()
            if len(parts) == 1:
                return statement
            return UnionStatement(parts=parts)
        if self.peek().is_keyword("INSERT"):
            return self.parse_insert_sp()
        raise self.error("expected SELECT or INSERT SP")

    # -- SELECT -----------------------------------------------------------------
    def parse_select(self, top_level: bool = True) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = self._select_items()
        self.expect_keyword("FROM")
        streams = self._stream_refs()
        where = None
        if self.accept_keyword("WHERE"):
            where = self._predicate()
        group_by = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = self.expect_ident()
        if top_level:
            self._expect_eof()
        return SelectStatement(items=items, streams=streams, where=where,
                               group_by=group_by, distinct=distinct)

    def _select_items(self) -> list:
        items: list = []
        while True:
            token = self.peek()
            if token.type is TokenType.PUNCT and token.value == "*":
                self.next()
                items.append(SelectItem("*"))
            elif token.type is TokenType.IDENT:
                name = self.expect_ident()
                if (name.lower() in _AGGREGATES
                        and self.peek().value == "("):
                    self.expect_punct("(")
                    if self.accept_punct("*"):
                        column = "*"
                    else:
                        column = self.expect_ident()
                    self.expect_punct(")")
                    items.append(AggregateItem(name.lower(), column))
                else:
                    items.append(SelectItem(name))
            else:
                raise self.error("expected select item")
            if not self.accept_punct(","):
                return items

    def _stream_refs(self) -> list[StreamRef]:
        refs = []
        while True:
            name = self.expect_ident()
            window = None
            if self.accept_keyword("RANGE"):
                token = self.next()
                if token.type is not TokenType.NUMBER:
                    self.pos -= 1
                    raise self.error("expected window size after RANGE")
                window = float(token.value)
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_ident()
            refs.append(StreamRef(name, window, alias))
            if not self.accept_punct(","):
                return refs

    # -- predicates --------------------------------------------------------------
    def _predicate(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        parts = [left]
        while self.accept_keyword("OR"):
            parts.append(self._and_expr())
        if len(parts) == 1:
            return left
        return LogicalAST("OR", tuple(parts))

    def _and_expr(self):
        left = self._not_expr()
        parts = [left]
        while self.accept_keyword("AND"):
            parts.append(self._not_expr())
        if len(parts) == 1:
            return left
        return LogicalAST("AND", tuple(parts))

    def _not_expr(self):
        if self.accept_keyword("NOT"):
            return NotAST(self._not_expr())
        if self.accept_punct("("):
            inner = self._predicate()
            self.expect_punct(")")
            return inner
        return self._comparison()

    def _comparison(self) -> ComparisonAST:
        lhs = self.expect_ident()
        op = self.expect_op()
        token = self.next()
        if token.type is TokenType.NUMBER:
            value: object = (float(token.value) if "." in token.value
                             else int(token.value))
            return ComparisonAST(lhs, op, value)
        if token.type is TokenType.STRING:
            return ComparisonAST(lhs, op, token.value)
        if token.type is TokenType.IDENT:
            return ComparisonAST(lhs, op, token.value, rhs_is_column=True)
        self.pos -= 1
        raise self.error("expected comparison right-hand side")

    # -- INSERT SP ---------------------------------------------------------------
    def parse_insert_sp(self) -> InsertSPStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("SP")
        sp_name = None
        if self.accept_keyword("AS"):
            sp_name = self.expect_ident()
        self.expect_keyword("INTO")
        self.expect_keyword("STREAM")
        token = self.next()
        if token.type in (TokenType.IDENT, TokenType.STRING,
                          TokenType.NUMBER):
            stream = token.value
        else:
            self.pos -= 1
            raise self.error("expected stream name or id")
        self.expect_keyword("LET")
        lets: dict = {}
        while True:
            lets.update(self._let_binding(sp_name))
            if not self.accept_punct(","):
                break
        self._expect_eof()
        if "DDP" not in lets or "SRP" not in lets:
            raise CQLSyntaxError("INSERT SP requires DDP and SRP bindings")
        return InsertSPStatement(
            stream=stream,
            ddp=lets["DDP"],
            srp=lets["SRP"],
            sp_name=sp_name,
            sign=lets.get("SIGN", "positive"),
            immutable=lets.get("IMMUTABLE", False),
            incremental=lets.get("INCREMENTAL", False),
            timestamp=lets.get("TIMESTAMP"),
            lets=lets,
        )

    _LET_FIELDS = ("DDP", "SRP", "SIGN", "IMMUTABLE", "INCREMENTAL",
                   "TIMESTAMP")

    def _let_binding(self, sp_name: str | None) -> dict:
        token = self.next()
        field = None
        if token.type is TokenType.KEYWORD and token.value in \
                self._LET_FIELDS:
            field = token.value
        elif token.type is TokenType.IDENT and "." in token.value:
            # [sp_name.]FIELD form.
            prefix, _, suffix = token.value.partition(".")
            if sp_name is not None and prefix != sp_name:
                raise CQLSyntaxError(
                    f"unknown sp name {prefix!r} in LET binding",
                    token.line, token.column)
            if suffix.upper() in self._LET_FIELDS:
                field = suffix.upper()
        if field is None:
            self.pos -= 1
            raise self.error(
                "expected DDP/SRP/SIGN/IMMUTABLE/INCREMENTAL/TIMESTAMP")
        op = self.expect_op()
        if op not in ("=", "=="):
            raise self.error("expected '=' in LET binding")
        value_token = self.next()
        if field in ("DDP", "SRP"):
            if value_token.type is not TokenType.STRING:
                self.pos -= 1
                raise self.error(f"{field} must be a quoted string")
            return {field: value_token.value}
        if field == "SIGN":
            if value_token.type is TokenType.KEYWORD and value_token.value in (
                    "POSITIVE", "NEGATIVE"):
                return {field: value_token.value.lower()}
            if value_token.type is TokenType.STRING:
                return {field: value_token.value.lower()}
            self.pos -= 1
            raise self.error("SIGN must be POSITIVE or NEGATIVE")
        if field in ("IMMUTABLE", "INCREMENTAL"):
            if value_token.type is TokenType.KEYWORD and value_token.value in (
                    "TRUE", "FALSE"):
                return {field: value_token.value == "TRUE"}
            self.pos -= 1
            raise self.error(f"{field} must be TRUE or FALSE")
        # TIMESTAMP
        if value_token.type is not TokenType.NUMBER:
            self.pos -= 1
            raise self.error("TIMESTAMP must be numeric")
        return {field: float(value_token.value)}

    def _expect_eof(self) -> None:
        if self.peek().type is not TokenType.EOF:
            raise self.error("unexpected trailing input")


def parse(text: str):
    """Parse one CQL statement (SELECT or INSERT SP)."""
    return _Parser(text).parse_statement()


def parse_select(text: str) -> SelectStatement:
    """Parse a statement that must be a single SELECT."""
    statement = parse(text)
    if not isinstance(statement, SelectStatement):
        raise CQLSyntaxError("expected a SELECT statement")
    return statement


def parse_insert_sp(text: str) -> InsertSPStatement:
    """Parse a statement that must be an INSERT SP declaration."""
    statement = parse(text)
    if not isinstance(statement, InsertSPStatement):
        raise CQLSyntaxError("expected an INSERT SP statement")
    return statement
