"""Structured diagnostics emitted by the static security analyzer.

Every check in :mod:`repro.analysis` reports its findings as
:class:`Diagnostic` values collected into an :class:`AnalysisReport`.
A diagnostic carries a stable code (``SEC001`` … ``SEC005``), a
severity, the plan path of the offending node, a human-readable
message and — where a mechanical remedy exists — a fix-it hint.

The codes (see ``docs/ANALYSIS.md`` for the full catalog):

========  ========================================================
SEC001    source→sink path with no Security Shield on it
SEC002    attribute-scoped sp-batch pruned upstream (leak widening)
SEC003    dead/redundant shield dominated by an upstream shield
SEC004    Table II rewrite precondition violated or unprovable
SEC005    plan-spec / baseline inconsistency
SEC006    UDF reads attributes outside its declared set
SEC007    impure/nondeterministic UDF on an enforcement path
SEC008    UDF read-set widens an attribute-scoped sp's pruning
========  ========================================================
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "CATALOG",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
]

#: One-line summary per diagnostic code.
CATALOG: dict[str, str] = {
    "SEC001": "unshielded source-to-sink path",
    "SEC002": "attribute-scoped policy pruned upstream of enforcement",
    "SEC003": "redundant shield dominated by an upstream shield",
    "SEC004": "rewrite precondition violated or not provable",
    "SEC005": "plan-spec or baseline inconsistency",
    "SEC006": "UDF attribute reads not covered by its declaration",
    "SEC007": "impure or nondeterministic UDF on an enforcement path",
    "SEC008": "UDF read-set widens attribute-scoped sp pruning",
}


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering reflects urgency."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        return cls[text.upper()]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    severity: Severity
    #: Slash path of the offending node from the plan root, prefixed
    #: with the query name when known (``"q0:shield/dupelim"``).
    node_path: str
    message: str
    #: Mechanical remedy, when one exists.
    fixit: str | None = None

    def to_dict(self) -> dict:
        data = {
            "code": self.code,
            "severity": self.severity.label,
            "node_path": self.node_path,
            "message": self.message,
        }
        if self.fixit is not None:
            data["fixit"] = self.fixit
        return data

    def __str__(self) -> str:
        text = (f"{self.code} {self.severity.label} at {self.node_path}: "
                f"{self.message}")
        if self.fixit is not None:
            text += f" (fix: {self.fixit})"
        return text


@dataclass
class AnalysisReport:
    """All diagnostics of one analysis run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, code: str, severity: Severity, node_path: str,
            message: str, fixit: str | None = None) -> Diagnostic:
        if code not in CATALOG:
            raise ValueError(f"unknown diagnostic code: {code!r}")
        diagnostic = Diagnostic(code, severity, node_path, message, fixit)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "AnalysisReport | Iterable[Diagnostic]") -> None:
        if isinstance(other, AnalysisReport):
            other = other.diagnostics
        self.diagnostics.extend(other)

    # -- selection ------------------------------------------------------
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings/infos allowed)."""
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    # -- rendering ------------------------------------------------------
    def sorted(self) -> list[Diagnostic]:
        """Most severe first, then by code and node path."""
        return sorted(self.diagnostics,
                      key=lambda d: (-d.severity, d.code, d.node_path))

    def render_text(self, prefix: str = "") -> str:
        lines = [f"{prefix}{diag}" for diag in self.sorted()]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)
