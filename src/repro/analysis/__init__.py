"""Static security-plan analysis (shield coverage, leaks, rewrites).

The analyzer proves — before a single tuple flows — that every
source→sink path of a plan crosses a Security Shield (SEC001), that no
projection prunes an attribute-scoped sp-batch out from under
downstream enforcement (SEC002), that no shield is dead weight
(SEC003), that every Table II rewrite the optimizer considers has a
*proven* precondition (SEC004, fail-closed), that verify plan
specs are internally consistent (SEC005), and that every UDF on the
plan is honest about its effects — declared read-sets cover inferred
reads (SEC006), provably impure/nondeterministic callables are
flagged (SEC007), and no undeclared read widens an attribute-scoped
sp's pruning (SEC008).

Entry points:

* :func:`analyze_expr` — logical expressions (registration time);
* :func:`analyze_plan` — compiled :class:`PhysicalPlan` DAGs
  (compilation time, consulted by ``DSMS.build_plan``);
* :func:`lint_file` / :func:`lint_scenario` — plan-spec and scenario
  JSON (the ``repro lint`` CLI and the differential harness);
* :mod:`repro.analysis.rewrites` — the precondition prover the
  rewrite rules consult;
* :mod:`repro.analysis.udf` / :func:`analyze_callable` — the UDF
  effect analyzer (read-sets, purity, determinism, totality) whose
  proofs the compiler, the rewrite rules and the sharded executor
  consume.
"""

from repro.analysis.diagnostics import (CATALOG, AnalysisReport,
                                        Diagnostic, Severity)
from repro.analysis.exprcheck import analyze_expr
from repro.analysis.lattice import (PathState, StreamFacts, dominates,
                                    join_states)
from repro.analysis.plancheck import analyze_plan
from repro.analysis.rewrites import (PRECONDITIONS, Precondition, Proof,
                                     hazard_absent, hazard_sites,
                                     proof_for, prove_absent,
                                     refusal_reason, refused_rewrites)
from repro.analysis.speclint import (facts_for_streams, lint_file,
                                     lint_scenario, lint_scenario_object,
                                     lint_spec)
from repro.analysis.udf import (EffectReport, analyze_callable,
                                condition_udfs, condition_verified,
                                shard_safe, udf_diagnostics,
                                verify_declaration)

__all__ = [
    "CATALOG",
    "AnalysisReport",
    "Diagnostic",
    "EffectReport",
    "PRECONDITIONS",
    "PathState",
    "Precondition",
    "Proof",
    "Severity",
    "StreamFacts",
    "analyze_callable",
    "analyze_expr",
    "analyze_plan",
    "condition_udfs",
    "condition_verified",
    "dominates",
    "facts_for_streams",
    "hazard_absent",
    "hazard_sites",
    "join_states",
    "lint_file",
    "lint_scenario",
    "lint_scenario_object",
    "lint_spec",
    "proof_for",
    "prove_absent",
    "refusal_reason",
    "refused_rewrites",
    "shard_safe",
    "udf_diagnostics",
    "verify_declaration",
]
