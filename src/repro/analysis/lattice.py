"""The security dataflow lattice and static stream facts.

The analyzer propagates one :class:`PathState` along every
source→sink path of a plan.  A state records what is *guaranteed* on
every route that reaches the current node:

* ``shields`` — the set of in-plan Security Shield conjuncts every
  route has crossed (empty ⇒ unshielded so far);
* ``delivery`` — whether every route crossed the per-query delivery
  shield (the fixed backstop the DSMS appends at the sink);
* ``pruned`` — attributes some projection/aggregation on the path has
  dropped;
* ``streams`` — stream ids feeding the node;
* ``attrs`` — the attribute set the node outputs, when derivable.

At DAG merge points (binary operators, shared subplans) two states
meet via :func:`join_states`: a guarantee survives only if *both*
incoming paths provide it, while pruning accumulates — the classic
must/may split of a dataflow analysis.

:class:`StreamFacts` is the abstraction of the *streams* rather than
the plan: which streams carry attribute-scoped sps (and for which
attributes), which interleave differing policies across sp-batches,
and which carry negative signs.  Facts are three-valued — when
``known`` is false every query returns ``None`` ("can't tell") and
fact-dependent checks stay silent instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.core.punctuation import (Granularity, SecurityPunctuation)
from repro.stream.element import StreamElement

__all__ = [
    "PathState",
    "StreamFacts",
    "dominates",
    "join_states",
]

Conjunct = frozenset  # frozenset[str]: one shield conjunct (a role set)


@dataclass(frozen=True)
class PathState:
    """What is guaranteed on every route into one plan node."""

    shields: frozenset = frozenset()  # frozenset[Conjunct]
    delivery: bool = False
    pruned: frozenset = frozenset()  # frozenset[str]
    streams: frozenset = frozenset()  # frozenset[str]
    attrs: "frozenset | None" = None  # frozenset[str] | None

    @classmethod
    def source(cls, stream_id: str,
               attrs: "Iterable[str] | None" = None) -> "PathState":
        return cls(streams=frozenset({stream_id}),
                   attrs=frozenset(attrs) if attrs is not None else None)

    @property
    def shielded(self) -> bool:
        """An in-plan shield guards every route into this node."""
        return bool(self.shields)

    def with_shield(self, conjuncts: Iterable[Conjunct]) -> "PathState":
        return replace(self, shields=self.shields | frozenset(
            frozenset(c) for c in conjuncts))

    def with_delivery(self) -> "PathState":
        return replace(self, delivery=True)

    def project(self, kept: Iterable[str]) -> "PathState":
        """State after a projection keeping exactly ``kept``."""
        kept_set = frozenset(kept)
        dropped = (self.attrs - kept_set if self.attrs is not None
                   else frozenset())
        return replace(self, attrs=kept_set, pruned=self.pruned | dropped)


def join_states(a: PathState, b: PathState) -> PathState:
    """Meet of two incoming path states at a DAG merge point."""
    if a.attrs is not None and b.attrs is not None:
        attrs: "frozenset | None" = a.attrs | b.attrs
    else:
        attrs = None
    return PathState(
        shields=a.shields & b.shields,
        delivery=a.delivery and b.delivery,
        pruned=a.pruned | b.pruned,
        streams=a.streams | b.streams,
        attrs=attrs,
    )


def dominates(upstream: Iterable[Conjunct],
              predicates: Iterable[Conjunct]) -> bool:
    """Whether upstream shield conjuncts make ``predicates`` redundant.

    A Security Shield passes a tuple iff its policy intersects *every*
    conjunct.  An upstream conjunct ``u ⊆ c`` therefore implies the
    downstream check ``c``: whatever intersects ``u`` intersects the
    superset ``c`` too.  The downstream shield is dead iff each of its
    conjuncts is implied by some upstream conjunct.
    """
    upstream = tuple(upstream)
    if not upstream:
        return False
    return all(any(u <= c for u in upstream) for c in predicates)


# -- stream facts -------------------------------------------------------------

def _batch_signatures(
        sps: Sequence[SecurityPunctuation]) -> set[frozenset]:
    """One signature per sp-batch (consecutive sps sharing a ts)."""
    signatures: set[frozenset] = set()
    batch: list[SecurityPunctuation] = []
    for sp in sps:
        if batch and sp.ts != batch[-1].ts:
            signatures.add(frozenset(
                (s.is_positive, s.roles(), s.ddp.spec()) for s in batch))
            batch = []
        batch.append(sp)
    if batch:
        signatures.add(frozenset(
            (s.is_positive, s.roles(), s.ddp.spec()) for s in batch))
    return signatures


def _governed_attributes(sp: SecurityPunctuation,
                         schema: "Sequence[str] | None") -> frozenset:
    """Concrete attributes an attribute-scoped sp governs."""
    pattern = sp.ddp.attribute
    values = getattr(pattern, "value", None)
    if values is not None:
        return frozenset({values})
    values = getattr(pattern, "values", None)
    if values is not None:
        return frozenset(values)
    if schema is not None:
        return frozenset(pattern.eval(schema))
    return frozenset()


@dataclass(frozen=True)
class StreamFacts:
    """Statically known properties of the input streams."""

    #: Whether the facts were derived from concrete stream contents.
    #: When false, every query below answers ``None`` ("unknown").
    known: bool = False
    #: stream id → attributes governed by attribute-scoped sp-batches.
    attr_scoped: Mapping[str, frozenset] = field(default_factory=dict)
    #: Streams whose sp-batches interleave differing policies.
    hetero_streams: frozenset = frozenset()
    #: Streams carrying negative-sign sps.
    negative_streams: frozenset = frozenset()
    #: stream id → declared attribute names.
    schemas: Mapping[str, tuple] = field(default_factory=dict)

    @classmethod
    def unknown(cls) -> "StreamFacts":
        return cls()

    @classmethod
    def from_elements(
            cls, streams: "Mapping[str, Sequence[StreamElement]]",
            schemas: "Mapping[str, Sequence[str]] | None" = None,
    ) -> "StreamFacts":
        """Derive facts from decoded stream elements."""
        schemas = dict(schemas or {})
        attr_scoped: dict[str, frozenset] = {}
        hetero: set[str] = set()
        negative: set[str] = set()
        for sid, elements in streams.items():
            sps = [e for e in elements
                   if isinstance(e, SecurityPunctuation)]
            if len(_batch_signatures(sps)) > 1:
                hetero.add(sid)
            governed: frozenset = frozenset()
            for sp in sps:
                if not sp.is_positive:
                    negative.add(sid)
                if sp.granularity() is Granularity.ATTRIBUTE:
                    governed |= _governed_attributes(
                        sp, schemas.get(sid))
            if governed:
                attr_scoped[sid] = governed
        return cls(known=True, attr_scoped=attr_scoped,
                   hetero_streams=frozenset(hetero),
                   negative_streams=frozenset(negative),
                   schemas={sid: tuple(attrs)
                            for sid, attrs in schemas.items()})

    # -- three-valued queries -------------------------------------------
    def governed_attributes(self,
                            streams: Iterable[str]) -> "frozenset | None":
        """Attrs governed by attribute-scoped sps on these streams."""
        if not self.known:
            return None
        governed: frozenset = frozenset()
        for sid in streams:
            governed |= self.attr_scoped.get(sid, frozenset())
        return governed

    def heterogeneous(self, streams: Iterable[str]) -> "bool | None":
        """Whether any of these streams interleaves differing policies."""
        if not self.known:
            return None
        return any(sid in self.hetero_streams for sid in streams)

    def has_negative(self, streams: Iterable[str]) -> "bool | None":
        if not self.known:
            return None
        return any(sid in self.negative_streams for sid in streams)

    def schema_of(self, stream_id: str) -> "tuple | None":
        attrs = self.schemas.get(stream_id)
        return tuple(attrs) if attrs is not None else None
