"""Dataflow analysis over logical expressions (SEC001-SEC004).

:func:`analyze_expr` pushes a :class:`~repro.analysis.lattice.PathState`
from every scan to the plan root and reports:

* **SEC001** — the root is reachable without crossing a Security
  Shield.  Without ``assume_delivery`` this is an *error* (nothing in
  the plan enforces access control); with it — the DSMS always appends
  a per-query delivery shield at the sink — it degrades to a warning:
  results are still policy-checked, but only at the very end, with no
  in-plan enforcement or early filtering.
* **SEC002** — a projection/aggregation prunes an attribute that an
  attribute-scoped sp-batch governs, so the batch disappears upstream
  of later enforcement points and the stale previous policy would
  govern (the widening bug class of ``project-prune-widening.json``).
* **SEC003** — a shield every route into which is already dominated
  by upstream shields with equal-or-narrower conjuncts: dead weight.
* **SEC004** — delegated to
  :func:`repro.analysis.rewrites.hazard_sites`.
* **SEC006-SEC008** — delegated to
  :func:`repro.analysis.udf.udf_diagnostics` for every selection or
  join predicate carrying a ``FuncCondition`` (undeclared reads,
  provable impurity, attribute-scoped pruning widened by a UDF read).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from repro.algebra.expressions import (GroupByExpr, LogicalExpr,
                                       ProjectExpr, ScanExpr, SelectExpr,
                                       ShieldExpr)
from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.lattice import (PathState, StreamFacts, dominates,
                                    join_states)
from repro.analysis.rewrites import expr_label, hazard_sites
from repro.analysis.udf import udf_diagnostics

__all__ = ["analyze_expr"]


def analyze_expr(expr: LogicalExpr, *,
                 facts: "StreamFacts | None" = None,
                 roles: "Iterable[str] | None" = None,
                 assume_delivery: bool = False,
                 name: str = "plan") -> AnalysisReport:
    """Statically analyze one logical plan.

    ``facts`` carries what is known about the input streams
    (:meth:`StreamFacts.unknown` keeps fact-dependent checks silent).
    ``assume_delivery`` models the DSMS delivery shield appended at the
    sink; ``roles`` (the query specifier's roles) only sharpen the
    messages.  ``name`` prefixes every diagnostic path.
    """
    facts = facts if facts is not None else StreamFacts.unknown()
    report = AnalysisReport()
    state = _visit(expr, name, facts, report)
    report.extend(hazard_sites(expr, facts, name))
    if not state.shielded:
        role_text = (f" for roles {sorted(roles)}" if roles else "")
        if assume_delivery:
            report.add(
                "SEC001", Severity.WARNING, name,
                "no in-plan Security Shield on any source-to-sink "
                "path; enforcement relies solely on the delivery "
                "shield at the sink",
                fixit=f"add a ShieldExpr{role_text} (auto_shield=True "
                      "does this at the plan root)")
        else:
            report.add(
                "SEC001", Severity.ERROR, name,
                "source-to-sink path with no Security Shield: "
                "denial-by-default enforcement is unreachable",
                fixit=f"wrap the plan in a ShieldExpr{role_text} or "
                      "register with auto_shield=True")
    return report


def _visit(expr: LogicalExpr, path: str, facts: StreamFacts,
           report: AnalysisReport) -> PathState:
    here = f"{path}/{expr_label(expr)}"
    if isinstance(expr, ScanExpr):
        return PathState.source(expr.stream_id,
                                facts.schema_of(expr.stream_id))
    children = [_visit(child, here, facts, report)
                for child in expr.children()]
    if len(children) == 1:
        state = children[0]
    else:
        state = children[0]
        for other in children[1:]:
            state = join_states(state, other)
    if isinstance(expr, ShieldExpr):
        if state.shielded and dominates(state.shields, expr.predicates):
            preds = [sorted(p) for p in expr.predicates]
            report.add(
                "SEC003", Severity.WARNING, here,
                f"shield with conjuncts {preds} is dominated by "
                "upstream shields with equal-or-narrower scope on "
                "every route; it can never drop a tuple",
                fixit="remove the redundant shield or merge it into "
                      "the upstream one (Rule 1)")
        return state.with_shield(expr.predicates)
    if isinstance(expr, (ProjectExpr, GroupByExpr)):
        kept = _output_attributes(expr)
        governed = facts.governed_attributes(state.streams)
        if governed:
            leaked = governed - frozenset(kept)
            if leaked:
                op = ("projection" if isinstance(expr, ProjectExpr)
                      else "group-by")
                report.add(
                    "SEC002", Severity.WARNING, here,
                    f"{op} prunes attribute(s) {sorted(leaked)} whose "
                    "attribute-scoped sp-batches govern tuples on "
                    f"stream(s) {sorted(state.streams)}; downstream "
                    "enforcement sees the batch pruned away and must "
                    "fall back to denial-by-default markers to avoid "
                    "widening access",
                    fixit="place a Security Shield upstream of the "
                          f"{op}, or retain {sorted(leaked)}")
        return state.project(kept)
    if isinstance(expr, SelectExpr):
        report.extend(udf_diagnostics(expr.condition, here, facts=facts,
                                      streams=state.streams))
        return state
    # Dup-elim passes tuples through whole; joins/set ops merged
    # their inputs above.  Join outputs rename clashing attributes at
    # runtime, so their attribute set becomes unknown.
    if len(children) > 1:
        return replace(state, attrs=None)
    return state


def _output_attributes(expr: LogicalExpr) -> tuple:
    if isinstance(expr, ProjectExpr):
        return tuple(expr.attributes)
    assert isinstance(expr, GroupByExpr)
    kept = [expr.attribute]
    if expr.key is not None:
        kept.append(expr.key)
    return tuple(kept)
