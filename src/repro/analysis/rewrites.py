"""Rewrite-precondition proofs (Table II side conditions, SEC004).

The guarded Table II rules — π/ψ, δ/ψ and G/ψ commutes, join
re-association — are only equivalences under side conditions on the
*streams* (no attribute-scoped sps, no heterogeneous-policy segments,
no strict window semantics).  This module is the single authority on
those preconditions:

* :func:`prove_absent` turns a three-valued
  :class:`~repro.algebra.rules.RewriteContext` hazard flag into a
  :class:`Proof`; :func:`hazard_absent` is the fail-closed boolean the
  rules consult — an *unknown* flag refuses the rewrite rather than
  assuming safety.
* :func:`refused_rewrites` reports every structurally applicable but
  unproven rewrite site of a plan as a SEC004 diagnostic (used by the
  optimizer to explain what it declined and why).
* :func:`hazard_sites` flags rewrite sites whose precondition is
  *provably violated* by concrete :class:`StreamFacts` — the static
  form of the unsoundness PR 4's differential harness found
  dynamically (``dupelim-shield-commute.json``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.algebra.expressions import (DupElimExpr, GroupByExpr,
                                       IntersectExpr, JoinExpr, LogicalExpr,
                                       ProjectExpr, ScanExpr, SelectExpr,
                                       ShieldExpr, UnionExpr, walk)
from repro.analysis.diagnostics import (AnalysisReport, Diagnostic,
                                        Severity)
from repro.analysis.lattice import StreamFacts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.algebra.rules import RewriteContext

__all__ = [
    "PRECONDITIONS",
    "Precondition",
    "Proof",
    "expr_label",
    "hazard_absent",
    "hazard_sites",
    "iter_paths",
    "precondition_for",
    "proof_for",
    "prove_absent",
    "refusal_reason",
    "refused_rewrites",
]


class Proof(enum.Enum):
    """Outcome of trying to prove a rewrite precondition."""

    #: The hazard is proven absent: the rewrite is sound.
    PROVEN = "proven"
    #: The hazard is proven present: the rewrite is unsound here.
    REFUTED = "refuted"
    #: Nothing is known; fail closed (refuse the rewrite).
    UNKNOWN = "unknown"


def prove_absent(flag: "bool | None") -> Proof:
    """Interpret a three-valued hazard flag.

    ``False`` (hazard proven absent) → PROVEN, ``True`` (hazard
    proven present) → REFUTED, ``None`` (unknown) → UNKNOWN.
    """
    if flag is False:
        return Proof.PROVEN
    if flag is True:
        return Proof.REFUTED
    return Proof.UNKNOWN


def hazard_absent(flag: "bool | None") -> bool:
    """Fail-closed guard: only a *proven-absent* hazard admits a rewrite."""
    return prove_absent(flag) is Proof.PROVEN


@dataclass(frozen=True)
class Precondition:
    """The side condition one guarded Table II rule depends on."""

    rule_name: str
    #: :class:`RewriteContext` attribute holding the hazard flag.
    flag: str
    #: What must be absent for the rewrite to be sound.
    hazard: str


PRECONDITIONS: tuple[Precondition, ...] = (
    Precondition("commute-project-shield", "attribute_policies_possible",
                 "attribute-scoped sps the projection could prune "
                 "differently before vs. after the shield"),
    Precondition("commute-dupelim-shield", "heterogeneous_policies_possible",
                 "segments with differing policies feeding the stateful "
                 "duplicate-elimination"),
    Precondition("commute-groupby-shield", "heterogeneous_policies_possible",
                 "segments with differing policies feeding the stateful "
                 "group-by partitions"),
    Precondition("associate-join", "strict_join_windows",
                 "real window semantics that re-association would "
                 "re-anchor on different intermediate timestamps"),
)

_BY_RULE = {p.rule_name: p for p in PRECONDITIONS}


def precondition_for(rule_name: str) -> "Precondition | None":
    """The side condition guarding ``rule_name`` (None if unguarded)."""
    return _BY_RULE.get(rule_name)


def proof_for(rule_name: str, ctx: "RewriteContext") -> Proof:
    """Prove one rule's precondition against a rewrite context."""
    precondition = _BY_RULE.get(rule_name)
    if precondition is None:
        return Proof.PROVEN  # unguarded rule: no side condition
    return prove_absent(getattr(ctx, precondition.flag))


def refusal_reason(rule_name: str,
                   ctx: "RewriteContext") -> "str | None":
    """Why a rule application is refused, or ``None`` if admitted."""
    proof = proof_for(rule_name, ctx)
    if proof is Proof.PROVEN:
        return None
    precondition = _BY_RULE[rule_name]
    state = ("proven present" if proof is Proof.REFUTED
             else "not provable (flag unset)")
    return (f"{rule_name} refused fail-closed: hazard "
            f"'{precondition.hazard}' is {state}")


# -- plan-shape walking -------------------------------------------------------

def expr_label(expr: LogicalExpr) -> str:
    """Short node label used in diagnostic paths."""
    if isinstance(expr, ScanExpr):
        return f"scan[{expr.stream_id}]"
    for cls, label in ((ShieldExpr, "shield"), (SelectExpr, "select"),
                       (ProjectExpr, "project"), (DupElimExpr, "dupelim"),
                       (GroupByExpr, "groupby"), (JoinExpr, "join"),
                       (UnionExpr, "union"), (IntersectExpr, "intersect")):
        if isinstance(expr, cls):
            return label
    return type(expr).__name__.lower()


def iter_paths(expr: LogicalExpr,
               root: str = "plan") -> Iterator[tuple[str, LogicalExpr]]:
    """Yield ``(path, node)`` pairs in pre-order."""
    path = f"{root}/{expr_label(expr)}"
    yield path, expr
    for child in expr.children():
        yield from iter_paths(child, path)


def _guarded_sites(
        expr: LogicalExpr,
        root: str) -> Iterator[tuple[str, str, LogicalExpr]]:
    """``(rule name, path, node)`` for guarded-rule shapes in a plan."""
    stateful = {DupElimExpr: "commute-dupelim-shield",
                GroupByExpr: "commute-groupby-shield"}
    for path, node in iter_paths(expr, root):
        if isinstance(node, ShieldExpr):
            inner = node.input
            if isinstance(inner, ProjectExpr):
                yield "commute-project-shield", path, node
            for cls, rule in stateful.items():
                if isinstance(inner, cls):
                    yield rule, path, node
        elif isinstance(node, (ProjectExpr, DupElimExpr, GroupByExpr)):
            (child,) = node.children()
            if isinstance(child, ShieldExpr):
                if isinstance(node, ProjectExpr):
                    yield "commute-project-shield", path, node
                else:
                    yield stateful[type(node)], path, node
        if isinstance(node, JoinExpr) and isinstance(node.left, JoinExpr):
            yield "associate-join", path, node
        # UDF-guarded select rewrites: the precondition is per-node (a
        # proof about the condition's callables), not a context flag.
        if isinstance(node, ShieldExpr) and isinstance(node.input,
                                                       SelectExpr):
            if _has_udf(node.input):
                yield "commute-select-shield", path, node
        elif isinstance(node, SelectExpr) and _has_udf(node):
            (child,) = node.children()
            if isinstance(child, ShieldExpr):
                yield "commute-select-shield", path, node
            elif isinstance(child, JoinExpr):
                yield "push-select-join", path, node


#: Rules whose precondition is the per-condition UDF proof.
_UDF_GUARDED = frozenset({"commute-select-shield", "push-select-join"})


def _has_udf(select: SelectExpr) -> bool:
    from repro.analysis.udf import condition_udfs

    return bool(condition_udfs(select.condition))


def _select_condition_proof(node: LogicalExpr) -> Proof:
    """The UDF proof for a guarded select site (shield- or select-rooted)."""
    from repro.analysis.udf import condition_verified

    select = node.input if isinstance(node, ShieldExpr) else node
    assert isinstance(select, SelectExpr)
    return condition_verified(select.condition)


def refused_rewrites(expr: LogicalExpr, ctx: "RewriteContext",
                     root: str = "plan") -> list[Diagnostic]:
    """SEC004 diagnostics for structurally applicable, unproven rewrites.

    These are sites where a guarded Table II rule *would* match but the
    context cannot prove its precondition, so the fail-closed guard
    keeps it off.  Severity is informational: refusing is the correct
    behaviour; the diagnostic only explains the optimizer's choice.
    """
    diagnostics: list[Diagnostic] = []
    seen: set[tuple[str, str]] = set()
    for rule_name, path, node in _guarded_sites(expr, root):
        if (rule_name, path) in seen:
            continue
        seen.add((rule_name, path))
        if rule_name in _UDF_GUARDED:
            proof = _select_condition_proof(node)
            if proof is Proof.PROVEN:
                continue
            state = ("refuted" if proof is Proof.REFUTED
                     else "not provable")
            diagnostics.append(Diagnostic(
                "SEC004", Severity.INFO, path,
                f"{rule_name} refused fail-closed: the select carries "
                f"a UDF whose purity/determinism/read-set proof is "
                f"{state}",
                fixit="write the UDF in the analyzer's provable "
                      "fragment (.get reads, no shared state) and "
                      "declare its full read-set"))
            continue
        reason = refusal_reason(rule_name, ctx)
        if reason is None:
            continue
        diagnostics.append(Diagnostic(
            "SEC004", Severity.INFO, path, reason,
            fixit="prove the precondition (set the context flag to "
                  "False) to admit the rewrite"))
    return diagnostics


def hazard_sites(expr: LogicalExpr, facts: StreamFacts,
                 root: str = "plan") -> AnalysisReport:
    """SEC004 findings where stream facts *refute* a precondition.

    Unlike :func:`refused_rewrites` (which reports what the optimizer
    declined), these sites are adjacent shield/operator pairs whose
    commute is provably unsound for the concrete streams — the shape
    class behind ``dupelim-shield-commute.json``.  The fail-closed
    guards keep the optimizer from making it worse, hence warnings,
    not errors.
    """
    report = AnalysisReport()
    if not facts.known:
        return report
    for rule_name, path, node in _guarded_sites(expr, root):
        streams = frozenset(n.stream_id for n in walk(node)
                            if isinstance(n, ScanExpr))
        if rule_name in ("commute-dupelim-shield",
                         "commute-groupby-shield"):
            if facts.heterogeneous(streams):
                stateful = ("duplicate-elimination"
                            if "dupelim" in rule_name else "group-by")
                report.add(
                    "SEC004", Severity.WARNING, path,
                    f"shield adjacent to stateful {stateful} over "
                    f"stream(s) {sorted(streams)} that interleave "
                    f"differing policies; commuting them changes "
                    f"which tuples the stateful operator sees "
                    f"({rule_name} precondition refuted)",
                    fixit="keep the shield placement fixed (the "
                          "fail-closed optimizer guard already "
                          "refuses this commute)")
        elif rule_name == "commute-project-shield":
            governed = facts.governed_attributes(streams)
            if governed:
                report.add(
                    "SEC004", Severity.WARNING, path,
                    f"shield adjacent to a projection over stream(s) "
                    f"{sorted(streams)} carrying attribute-scoped sps "
                    f"for {sorted(governed)}; commuting changes which "
                    f"sp-batches the projection prunes "
                    f"({rule_name} precondition refuted)",
                    fixit="keep the shield placement fixed (the "
                          "fail-closed optimizer guard already "
                          "refuses this commute)")
        elif rule_name == "associate-join":
            report.add(
                "SEC004", Severity.INFO, path,
                "nested join: re-association is refused under strict "
                "window semantics (associate-join precondition "
                "unprovable for timed windows)")
    return report
