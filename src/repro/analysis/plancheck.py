"""Dataflow analysis over compiled :class:`PhysicalPlan` DAGs.

The physical-plan pass re-runs the source→sink lattice after
compilation — where hash-consed shared subplans, the per-query
delivery shields and the concrete operator objects exist.  It is the
layer :meth:`repro.engine.dsms.DSMS.build_plan` consults before the
executor is allowed to push a single tuple:

* **SEC001** *error* — a sink reachable with no shield of any kind on
  some route (hand-built plans; the DSMS always appends a delivery
  shield, so its plans can at worst trigger the warning form: delivery
  backstop only, no in-plan enforcement).
* **SEC002** — as in :mod:`repro.analysis.exprcheck`, evaluated over
  the compiled Project operators.
* **SEC003** — redundant shields; the per-query ``delivery:*``
  shields are exempt (they are *intentionally* redundant backstops).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.lattice import (PathState, StreamFacts, dominates,
                                    join_states)
from repro.operators.project import Project
from repro.operators.shield import SecurityShield

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.plan import PhysicalPlan, PlanNode

__all__ = ["analyze_plan"]

#: Name prefix of the fixed per-query delivery shields.
DELIVERY_PREFIX = "delivery:"


def analyze_plan(plan: "PhysicalPlan", *,
                 facts: "StreamFacts | None" = None) -> AnalysisReport:
    """Statically analyze a compiled operator DAG."""
    facts = facts if facts is not None else StreamFacts.unknown()
    report = AnalysisReport()
    in_states: dict[int, list[PathState]] = {}
    for stream_id, entries in plan.entries.items():
        source = PathState.source(stream_id, facts.schema_of(stream_id))
        for node, _port in entries:
            in_states.setdefault(node.node_id, []).append(source)
    for node in plan.topological():
        incoming = in_states.get(node.node_id)
        if not incoming:
            continue  # unreachable from any registered source
        state = incoming[0]
        for other in incoming[1:]:
            state = join_states(state, other)
        state = _transfer(node, state, facts, report)
        if not node.downstream:
            _check_sink(node, state, report)
            continue
        for child, _port in node.downstream:
            in_states.setdefault(child.node_id, []).append(state)
    return report


def _node_path(node: "PlanNode") -> str:
    return f"node#{node.node_id}:{node.operator.name}"


def _transfer(node: "PlanNode", state: PathState, facts: StreamFacts,
              report: AnalysisReport) -> PathState:
    operator = node.operator
    if isinstance(operator, SecurityShield):
        if operator.name.startswith(DELIVERY_PREFIX):
            return state.with_delivery()
        conjuncts = tuple(frozenset(c.names())
                          for c in operator.conjuncts)
        if state.shielded and dominates(state.shields, conjuncts):
            report.add(
                "SEC003", Severity.WARNING, _node_path(node),
                f"shield {operator.name!r} is dominated by upstream "
                "shields with equal-or-narrower scope on every route; "
                "it can never drop a tuple",
                fixit="remove the redundant shield or merge it "
                      "upstream (Rule 1)")
        return state.with_shield(conjuncts)
    if isinstance(operator, Project):
        governed = facts.governed_attributes(state.streams)
        if governed:
            leaked = governed - frozenset(operator.attributes)
            if leaked:
                report.add(
                    "SEC002", Severity.WARNING, _node_path(node),
                    f"projection prunes attribute(s) {sorted(leaked)} "
                    "governed by attribute-scoped sp-batches on "
                    f"stream(s) {sorted(state.streams)}; downstream "
                    "enforcement must rely on denial-by-default "
                    "markers to avoid widening access",
                    fixit="shield upstream of the projection or "
                          f"retain {sorted(leaked)}")
        return state.project(operator.attributes)
    return state


def _check_sink(node: "PlanNode", state: PathState,
                report: AnalysisReport) -> None:
    if state.shielded:
        return
    if state.delivery:
        report.add(
            "SEC001", Severity.WARNING, _node_path(node),
            "only the delivery shield guards this sink; no in-plan "
            "Security Shield on any source-to-sink path",
            fixit="register the query with auto_shield=True or add "
                  "an explicit ShieldExpr")
    else:
        report.add(
            "SEC001", Severity.ERROR, _node_path(node),
            "sink reachable with no Security Shield on the path: "
            "denial-by-default enforcement is unreachable",
            fixit="insert a SecurityShield (or delivery shield) "
                  "between the sources and this sink")
