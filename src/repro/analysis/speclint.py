"""Linting of plan-spec / scenario JSON files (``repro lint``).

Two file shapes are understood:

* a **scenario** (the :mod:`repro.verify` interchange format): a JSON
  object with ``streams`` (wire-format element lines per stream) and
  ``queries`` (roles + plan spec per query).  Stream contents are
  decoded into concrete :class:`StreamFacts`, so every fact-dependent
  check (SEC002/SEC004) runs with proven facts; queries are analyzed
  with the delivery backstop assumed (the DSMS always appends it).
* a **bare plan spec**: a JSON object whose root carries an ``op``
  key.  No streams are available, so facts stay unknown and SEC001 is
  an error when the plan carries no shield (nothing guarantees a
  delivery backstop for a free-standing plan).

SEC005 covers the spec-consistency layer: unknown operators, scans of
undeclared streams, empty shield conjuncts, references to attributes
the schema cannot produce, and baseline-relevant facts (negative-sign
sps in baseline-compatible scenarios).
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.exprcheck import analyze_expr
from repro.analysis.lattice import StreamFacts
from repro.errors import ReproError

__all__ = [
    "facts_for_streams",
    "lint_file",
    "lint_scenario",
    "lint_scenario_object",
    "lint_spec",
]

#: Required child/field keys per plan-spec operator.
_OP_FIELDS: dict[str, tuple[str, ...]] = {
    "scan": ("stream",),
    "shield": ("input", "predicates"),
    "select": ("input", "condition"),
    "project": ("input", "attributes"),
    "dupelim": ("input", "window"),
    "groupby": ("input", "agg", "attribute", "window"),
    "join": ("left", "right", "left_on", "right_on", "window"),
}


def facts_for_streams(
        streams: Mapping[str, Mapping[str, Any]]) -> StreamFacts:
    """Decode a scenario's wire-format streams into concrete facts."""
    from repro.stream.wire import decode_element

    decoded = {}
    schemas = {}
    for sid, spec in streams.items():
        schemas[sid] = tuple(spec.get("attributes", ()))
        decoded[sid] = [decode_element(line)
                        for line in spec.get("elements", ())]
    return StreamFacts.from_elements(decoded, schemas)


def _check_spec(spec: Any, path: str, schemas: Mapping[str, tuple],
                report: AnalysisReport) -> "frozenset | None":
    """SEC005 structural checks; returns the spec's output attributes."""
    if not isinstance(spec, dict) or "op" not in spec:
        report.add("SEC005", Severity.ERROR, path,
                   "plan spec node is not an object with an 'op' key")
        return None
    op = spec["op"]
    fields = _OP_FIELDS.get(op)
    if fields is None:
        report.add("SEC005", Severity.ERROR, path,
                   f"unknown plan operator {op!r}",
                   fixit=f"one of {sorted(_OP_FIELDS)}")
        return None
    here = f"{path}/{op}"
    missing = [key for key in fields if spec.get(key) is None]
    if missing:
        report.add("SEC005", Severity.ERROR, here,
                   f"{op} spec is missing required field(s) {missing}")
        return None
    children = {}
    for key in ("input", "left", "right"):
        if key in fields:
            children[key] = _check_spec(spec[key], here, schemas, report)
    if op == "scan":
        sid = spec["stream"]
        if sid not in schemas:
            report.add("SEC005", Severity.ERROR, here,
                       f"scan of undeclared stream {sid!r}",
                       fixit=f"declare {sid!r} under 'streams' "
                             f"(known: {sorted(schemas)})")
            return None
        return frozenset(schemas[sid])
    if op == "shield":
        predicates = spec["predicates"]
        if (not isinstance(predicates, list) or not predicates
                or any(not conjunct for conjunct in predicates)):
            report.add(
                "SEC005", Severity.ERROR, here,
                "shield predicates must be a non-empty list of "
                "non-empty role lists (an empty conjunct authorizes "
                "no role and drops everything)")
        return children["input"]
    attrs = children.get("input")
    if op == "select":
        condition = spec["condition"]
        if isinstance(condition, dict) and "udf" in condition:
            _check_udf_ref(condition["udf"], here, attrs, report)
            return attrs
        ref = (condition.get("attribute")
               if isinstance(condition, dict) else None)
        if ref is not None and attrs is not None and ref not in attrs:
            report.add("SEC005", Severity.ERROR, here,
                       f"selection references attribute {ref!r} not "
                       f"produced by its input (has {sorted(attrs)})")
        return attrs
    if op == "project":
        kept = spec["attributes"]
        if not kept:
            report.add("SEC005", Severity.ERROR, here,
                       "projection keeps no attributes")
            return frozenset()
        if attrs is not None:
            unknown = [a for a in kept if a not in attrs]
            if unknown:
                report.add(
                    "SEC005", Severity.ERROR, here,
                    f"projection keeps attribute(s) {unknown} not "
                    f"produced by its input (has {sorted(attrs)})")
        return frozenset(kept)
    if op == "dupelim":
        return attrs
    if op == "groupby":
        for key in ("key", "attribute"):
            ref = spec.get(key)
            if ref is not None and attrs is not None and ref not in attrs:
                report.add(
                    "SEC005", Severity.ERROR, here,
                    f"group-by {key} {ref!r} not produced by its "
                    f"input (has {sorted(attrs)})")
        kept = [spec["attribute"]]
        if spec.get("key") is not None:
            kept.append(spec["key"])
        return frozenset(kept)
    # join: left_on/right_on must come from the matching side.
    for key, side in (("left_on", "left"), ("right_on", "right")):
        side_attrs = children.get(side)
        ref = spec[key]
        if side_attrs is not None and ref not in side_attrs:
            report.add(
                "SEC005", Severity.ERROR, here,
                f"join {key} {ref!r} not produced by its {side} "
                f"input (has {sorted(side_attrs)})")
    return None  # join output renames clashes: unknown


def _check_udf_ref(ref: Any, here: str, attrs: "frozenset | None",
                   report: AnalysisReport) -> None:
    """SEC005 checks for a ``{"udf": name}`` selection condition."""
    from repro.operators.udfs import registered_udfs

    registry = registered_udfs()
    if not isinstance(ref, str) or ref not in registry:
        report.add("SEC005", Severity.ERROR, here,
                   f"selection references unregistered UDF {ref!r}",
                   fixit=f"one of {sorted(registry)}")
        return
    declared = registry[ref].attributes
    if attrs is not None:
        missing = declared - attrs
        if missing:
            report.add(
                "SEC005", Severity.ERROR, here,
                f"UDF {ref!r} declares attribute(s) {sorted(missing)} "
                f"not produced by its input (has {sorted(attrs)})")


def lint_spec(spec: dict, *, name: str = "plan",
              schemas: "Mapping[str, tuple] | None" = None,
              facts: "StreamFacts | None" = None,
              roles: "list | None" = None,
              assume_delivery: bool = False) -> AnalysisReport:
    """Lint one bare plan spec (structure + dataflow analysis)."""
    report = AnalysisReport()
    known = dict(schemas) if schemas is not None else {}
    if schemas is None:
        known = _implied_schemas(spec)
    _check_spec(spec, name, known, report)
    if not report.ok:
        return report  # structure broken: dataflow would mislead
    from repro.verify.differ import expr_from_spec

    try:
        expr = expr_from_spec(spec)
    except (ReproError, ValueError, KeyError, TypeError) as exc:
        report.add("SEC005", Severity.ERROR, name,
                   f"plan spec does not compile: {exc}")
        return report
    report.extend(analyze_expr(
        expr, facts=facts, roles=roles,
        assume_delivery=assume_delivery, name=name))
    return report


def _implied_schemas(spec: Any) -> dict:
    """Treat every scanned stream of a bare spec as declared."""
    schemas: dict = {}
    if isinstance(spec, dict):
        if spec.get("op") == "scan" and "stream" in spec:
            schemas[spec["stream"]] = ()
        for key in ("input", "left", "right"):
            schemas.update(_implied_schemas(spec.get(key)))
    return schemas


def lint_scenario(data: Any, *, name: str = "scenario") -> AnalysisReport:
    """Lint one verify scenario (streams + queries)."""
    if not isinstance(data, dict):
        report = AnalysisReport()
        report.add("SEC005", Severity.ERROR, name,
                   "scenario is not a JSON object")
        return report
    if hasattr(data, "streams") and hasattr(data, "queries"):
        streams, queries = data.streams, data.queries  # Scenario object
    else:
        streams = data.get("streams", {})
        queries = data.get("queries", {})
    report = AnalysisReport()
    if not isinstance(streams, dict) or not isinstance(queries, dict):
        report.add("SEC005", Severity.ERROR, name,
                   "scenario needs 'streams' and 'queries' objects")
        return report
    try:
        facts = facts_for_streams(streams)
    except (ReproError, ValueError, KeyError) as exc:
        report.add("SEC005", Severity.ERROR, f"{name}:streams",
                   f"stream elements do not decode: {exc}")
        return report
    schemas = {sid: tuple(spec.get("attributes", ()))
               for sid, spec in streams.items()}
    if facts.negative_streams and _baseline_shape(streams, queries):
        report.add(
            "SEC005", Severity.INFO, f"{name}:streams",
            f"baseline-compatible scenario carries negative-sign sps "
            f"on stream(s) {sorted(facts.negative_streams)}; baseline "
            "comparisons must use sign-aware policy stores")
    for qname, query in queries.items():
        qpath = f"{name}:{qname}"
        if not isinstance(query, dict) or "plan" not in query:
            report.add("SEC005", Severity.ERROR, qpath,
                       "query needs a 'plan' spec")
            continue
        roles = query.get("roles") or []
        if not roles:
            report.add("SEC005", Severity.ERROR, qpath,
                       "query has no roles; every query specifier "
                       "must belong to at least one role")
        report.extend(lint_spec(
            query["plan"], name=qpath, schemas=schemas, facts=facts,
            roles=list(roles), assume_delivery=True))
    return report


def _baseline_shape(streams: Mapping, queries: Mapping) -> bool:
    """Single stream, pure-scan plans — what the baselines can run."""
    if len(streams) != 1:
        return False
    return all(isinstance(q, dict)
               and isinstance(q.get("plan"), dict)
               and q["plan"].get("op") == "scan"
               for q in queries.values())


def lint_scenario_object(scenario: Any) -> AnalysisReport:
    """Lint a :class:`repro.verify.generator.Scenario` instance."""
    return lint_scenario(
        {"streams": scenario.streams, "queries": scenario.queries},
        name=getattr(scenario, "describe", lambda: "scenario")())


def lint_file(path: str) -> AnalysisReport:
    """Lint one JSON file (scenario or bare plan spec)."""
    report = AnalysisReport()
    try:
        with open(path, encoding="utf-8") as fp:
            data = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        report.add("SEC005", Severity.ERROR, path,
                   f"cannot load JSON: {exc}")
        return report
    if isinstance(data, dict) and "op" in data:
        return lint_spec(data, name="plan")
    return lint_scenario(data, name="scenario")
