"""UDF effect and taint analysis (verified read-sets, purity proofs).

``FuncCondition`` is the plan algebra's trusted escape hatch: an
arbitrary Python callable whose ``attributes`` declaration the
optimizer, the predicate compiler and the sharded executor all rely
on.  Nothing verified that declaration until now — a UDF that reads an
undeclared, sp-protected attribute silently defeats SEC002/SEC004 and
every fail-closed guard built on ``Condition.attributes()``.

This module lifts each callable at query-registration time and infers,
through a CPython **AST + bytecode** effect analysis:

* the **attribute read-set** — which tuple attributes the callable can
  observe, via abstract interpretation of ``item.values[...]``,
  ``item[...]``, ``item.get(...)`` and ``... in item`` chains on the
  tuple parameter (AST when source is recoverable, a small symbolic
  bytecode machine otherwise);
* **purity** — no global/closure mutation, no I/O, no mutating method
  reachable through a bounded call-graph walk over resolvable
  globals, closure cells and nested code objects;
* **determinism** — no ``random``/``time``/``id()``/``hash()`` or
  other per-process state reachable the same way (``hash`` of a str
  is ``PYTHONHASHSEED``-dependent, so it is nondeterministic *across
  shard worker processes*);
* **totality** — whether evaluating the callable on an arbitrary
  tuple can raise (only trivially guarded ``.get``-based predicates
  prove total; a bare ``item["a"]`` may ``KeyError``).

Every verdict is three-valued (:class:`~repro.analysis.rewrites.Proof`)
and **fails closed**: dynamic dispatch, computed ``getattr`` names,
``eval``, C extensions and any unmodelled construct yield UNKNOWN,
which preserves today's conservative behaviour everywhere a proof is
consulted.

Consumers:

* :func:`udf_diagnostics` — SEC006 (undeclared-attribute read),
  SEC007 (impure/nondeterministic UDF on an enforcement path) and
  SEC008 (read-set widens an attribute-scoped sp's pruning), emitted
  through :func:`repro.analysis.exprcheck.analyze_expr` and thus
  ``register_query(analyze=...)``, ``verify_scenario`` and
  ``repro lint``;
* :func:`condition_verified` — the proof the Table II select rewrites
  (:mod:`repro.algebra.rules`) consult before moving a UDF across a
  Security Shield or a join;
* :func:`shard_safe` — the static shard-safety proof
  :mod:`repro.engine.sharded` uses to pin unproven closures onto the
  coordinator instead of forking them across workers;
* ``FuncCondition.is_pure`` / the predicate compiler
  (:mod:`repro.operators.compiler`) — proven-pure UDFs vectorize
  instead of falling back to row-wise opaque stages.
"""

from __future__ import annotations

import ast
import dis
import inspect
import textwrap
import types
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rewrites import Proof

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.lattice import StreamFacts
    from repro.operators.conditions import Condition, FuncCondition

__all__ = [
    "EffectReport",
    "analyze_callable",
    "condition_udfs",
    "condition_verified",
    "shard_safe",
    "udf_diagnostics",
    "verify_declaration",
]

#: Builtins that are pure, deterministic and safe to call from a UDF.
SAFE_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "divmod", "float", "frozenset", "int",
    "isinstance", "len", "max", "min", "pow", "round", "str", "sum",
    "tuple",
})

#: Builtins that refute purity outright (I/O, state, code loading).
IMPURE_BUILTINS = frozenset({
    "print", "open", "input", "eval", "exec", "compile", "__import__",
    "setattr", "delattr", "globals", "locals", "vars", "exit", "quit",
})

#: Names/modules that refute *determinism* (per-process or wall-clock
#: state; ``hash``/``id`` differ across shard worker processes).
NONDET_NAMES = frozenset({"id", "hash"})
NONDET_MODULES = frozenset({
    "random", "time", "datetime", "os", "uuid", "secrets", "socket",
    "threading", "multiprocessing",
})

#: Modules whose attributes are pure deterministic functions/constants.
SAFE_MODULES = frozenset({"math", "operator", "statistics", "cmath"})

#: Method names whose call mutates the receiver (or performs I/O).
MUTATOR_METHODS = frozenset({
    "append", "add", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "reverse", "setdefault", "sort", "update",
    "write", "writelines", "flush", "send", "put",
})

#: DataTuple metadata attributes — reads of these are not schema reads.
TUPLE_METADATA = frozenset({"sid", "tid", "ts"})

#: Bounded call-graph walk depth.
MAX_CALL_DEPTH = 3


def _meet(*proofs: Proof) -> Proof:
    """Three-valued conjunction: REFUTED < UNKNOWN < PROVEN."""
    if any(p is Proof.REFUTED for p in proofs):
        return Proof.REFUTED
    if any(p is Proof.UNKNOWN for p in proofs):
        return Proof.UNKNOWN
    return Proof.PROVEN


@dataclass(frozen=True)
class EffectReport:
    """Inferred effects of one Python callable.

    ``reads`` is the set of tuple attributes the callable can observe
    (``None`` = not statically determinable — fail closed).  The three
    proofs are PROVEN only when the property holds on *every* path the
    bounded analysis could check.
    """

    reads: "frozenset[str] | None"
    purity: Proof
    determinism: Proof
    totality: Proof
    #: Human-readable notes on every downgrade from PROVEN.
    reasons: tuple[str, ...] = ()

    @property
    def proven_pure(self) -> bool:
        """Pure *and* deterministic — the vectorization/shard bar."""
        return (self.purity is Proof.PROVEN
                and self.determinism is Proof.PROVEN)

    def undeclared(self,
                   declared: "frozenset[str]") -> "frozenset[str] | None":
        """Inferred reads outside the declaration (None = unknown)."""
        if self.reads is None:
            return None
        return self.reads - declared


#: Per-callable memo (the analysis is deterministic in the callable).
_CACHE: "dict[int, tuple[Any, EffectReport]]" = {}
_CACHE_LIMIT = 1024


def analyze_callable(fn: Callable[..., object],
                     _depth: int = 0,
                     _seen: "frozenset[int] | None" = None) -> EffectReport:
    """Infer the effects of ``fn`` (see :class:`EffectReport`).

    Anything that is not plain analyzable Python — C extensions,
    builtins, dynamic dispatch — yields the all-UNKNOWN report.
    """
    key = id(fn)
    cached = _CACHE.get(key)
    if cached is not None and cached[0] is fn:
        return cached[1]
    report = _analyze(fn, _depth, _seen or frozenset())
    if len(_CACHE) > _CACHE_LIMIT:  # unbounded plans: drop, don't grow
        _CACHE.clear()
    _CACHE[key] = (fn, report)
    return report


def _analyze(fn: Callable[..., object], depth: int,
             seen: "frozenset[int]") -> EffectReport:
    code = getattr(fn, "__code__", None)
    if not isinstance(code, types.CodeType):
        return EffectReport(
            None, Proof.UNKNOWN, Proof.UNKNOWN, Proof.UNKNOWN,
            ("not a pure-Python function (C extension or builtin); "
             "effects are not analyzable",))
    if id(code) in seen:  # recursion: already accounted one level up
        return EffectReport(None, Proof.PROVEN, Proof.PROVEN,
                            Proof.UNKNOWN, ("recursive call cycle",))
    seen = seen | {id(code)}

    scan = _BytecodeScan(fn, code, depth, seen)
    scan.run()

    reads: "frozenset[str] | None" = None
    totality = Proof.UNKNOWN
    tree = _source_tree(fn, code)
    if tree is not None:
        ast_result = _AstReads(tree, _param_name(code)).run()
        reads = ast_result.reads
        totality = ast_result.totality
        scan.reasons.extend(ast_result.reasons)
    else:
        reads = _bytecode_reads(code)
        if reads is None:
            scan.reasons.append(
                "read-set not recoverable from source or bytecode")
    if scan.purity is not Proof.PROVEN:
        # An impure callable's exception behaviour is as opaque as the
        # effect that made it impure.
        totality = _meet(totality, Proof.UNKNOWN)
    return EffectReport(reads, scan.purity, scan.determinism, totality,
                        tuple(dict.fromkeys(scan.reasons)))


def _param_name(code: types.CodeType) -> "str | None":
    """The tuple parameter: the callable's first positional arg."""
    if code.co_argcount < 1:
        return None
    return code.co_varnames[0]


# -- bytecode pass: purity / determinism / call graph -------------------------

class _BytecodeScan:
    """Opcode + resolvable-global scan over a code object tree.

    Version-robust on purpose: it never models the evaluation stack,
    only instruction presence and resolvable ``LOAD_GLOBAL`` /
    ``LOAD_DEREF`` targets, so it degrades to UNKNOWN — never to a
    wrong PROVEN — on new opcodes.
    """

    def __init__(self, fn: Callable[..., object], code: types.CodeType,
                 depth: int, seen: "frozenset[int]"):
        self.fn = fn
        self.code = code
        self.depth = depth
        self.seen = seen
        self.purity = Proof.PROVEN
        self.determinism = Proof.PROVEN
        self.reasons: "list[str]" = []

    # resolution ------------------------------------------------------
    def _closure_cells(self) -> "dict[str, object]":
        cells: "dict[str, object]" = {}
        closure = getattr(self.fn, "__closure__", None) or ()
        freevars = self.code.co_freevars
        for name, cell in zip(freevars, closure):
            try:
                cells[name] = cell.cell_contents
            except ValueError:  # empty cell
                pass
        return cells

    def _resolve_global(self, name: str) -> "tuple[bool, object]":
        namespace = getattr(self.fn, "__globals__", None) or {}
        if name in namespace:
            return True, namespace[name]
        builtins_ns = namespace.get("__builtins__", __builtins__)
        if isinstance(builtins_ns, dict):
            if name in builtins_ns:
                return True, builtins_ns[name]
        elif hasattr(builtins_ns, name):
            return True, getattr(builtins_ns, name)
        return False, None

    def _downgrade_purity(self, to: Proof, reason: str) -> None:
        self.purity = _meet(self.purity, to)
        self.reasons.append(reason)

    def _downgrade_determinism(self, to: Proof, reason: str) -> None:
        self.determinism = _meet(self.determinism, to)
        self.reasons.append(reason)

    def _check_value(self, name: str, value: object) -> None:
        """Judge one resolved global / closure-cell value."""
        if isinstance(value, types.ModuleType):
            mod = value.__name__.split(".")[0]
            if mod in NONDET_MODULES:
                self._downgrade_purity(
                    Proof.REFUTED, f"reaches module {mod!r}")
                self._downgrade_determinism(
                    Proof.REFUTED, f"module {mod!r} is nondeterministic")
            elif mod not in SAFE_MODULES:
                self._downgrade_purity(
                    Proof.UNKNOWN, f"unvetted module {mod!r}")
                self._downgrade_determinism(
                    Proof.UNKNOWN, f"unvetted module {mod!r}")
            return
        if isinstance(value, (types.FunctionType, types.LambdaType)):
            if self.depth >= MAX_CALL_DEPTH:
                self._downgrade_purity(
                    Proof.UNKNOWN, f"call depth limit at {name!r}")
                self._downgrade_determinism(
                    Proof.UNKNOWN, f"call depth limit at {name!r}")
                return
            child = analyze_callable(value, self.depth + 1, self.seen)
            self.purity = _meet(self.purity, child.purity)
            self.determinism = _meet(self.determinism, child.determinism)
            if child.purity is not Proof.PROVEN:
                self.reasons.append(f"helper {name!r}: purity "
                                    f"{child.purity.value}")
            if child.determinism is not Proof.PROVEN:
                self.reasons.append(f"helper {name!r}: determinism "
                                    f"{child.determinism.value}")
            return
        if callable(value):
            builtin_name = getattr(value, "__name__", name)
            if builtin_name in IMPURE_BUILTINS:
                self._downgrade_purity(
                    Proof.REFUTED, f"calls impure builtin "
                    f"{builtin_name!r}")
            elif builtin_name in NONDET_NAMES:
                self._downgrade_determinism(
                    Proof.REFUTED,
                    f"{builtin_name}() is process-specific")
            elif builtin_name not in SAFE_BUILTINS:
                self._downgrade_purity(
                    Proof.UNKNOWN, f"unvetted callable {name!r}")
                self._downgrade_determinism(
                    Proof.UNKNOWN, f"unvetted callable {name!r}")
            return
        if not _is_immutable_constant(value):
            # Reading mutable shared state: pure per se, but the value
            # can change between evaluations (reordering-observable).
            self._downgrade_determinism(
                Proof.UNKNOWN, f"reads mutable shared state {name!r}")

    # the scan --------------------------------------------------------
    def run(self) -> None:
        cells = self._closure_cells()
        for code in _code_tree(self.code):
            for instr in dis.get_instructions(code):
                op = instr.opname
                arg = instr.argval
                if op in ("STORE_GLOBAL", "DELETE_GLOBAL"):
                    self._downgrade_purity(
                        Proof.REFUTED, f"writes global {arg!r}")
                elif op in ("STORE_DEREF", "DELETE_DEREF"):
                    if arg in self.code.co_freevars:
                        self._downgrade_purity(
                            Proof.REFUTED,
                            f"rebinds closure variable {arg!r}")
                elif op in ("STORE_ATTR", "DELETE_ATTR",
                            "STORE_SUBSCR", "DELETE_SUBSCR"):
                    self._downgrade_purity(
                        Proof.UNKNOWN,
                        f"stores through {op.lower()} (target not "
                        "provably local)")
                elif op == "IMPORT_NAME":
                    self._downgrade_purity(
                        Proof.UNKNOWN, f"imports {arg!r} at call time")
                elif op in ("LOAD_GLOBAL", "LOAD_NAME"):
                    resolved, value = self._resolve_global(str(arg))
                    if resolved:
                        self._check_value(str(arg), value)
                    else:
                        self._downgrade_purity(
                            Proof.UNKNOWN,
                            f"unresolvable global {arg!r}")
                        self._downgrade_determinism(
                            Proof.UNKNOWN,
                            f"unresolvable global {arg!r}")
                elif op == "LOAD_DEREF":
                    if arg in cells:
                        self._check_value(str(arg), cells[arg])
                    elif arg in self.code.co_freevars:
                        self._downgrade_purity(
                            Proof.UNKNOWN, f"unbound closure cell "
                            f"{arg!r}")
                        self._downgrade_determinism(
                            Proof.UNKNOWN, f"unbound closure cell "
                            f"{arg!r}")
                elif (op in ("LOAD_METHOD", "LOAD_ATTR")
                        and arg in MUTATOR_METHODS):
                    self._downgrade_purity(
                        Proof.UNKNOWN,
                        f"loads mutating method {arg!r}")


def _code_tree(code: types.CodeType) -> "Iterator[types.CodeType]":
    """The code object plus every nested code object (lambdas, comps)."""
    yield code
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            yield from _code_tree(const)


def _is_immutable_constant(value: object) -> bool:
    if value is None or isinstance(value, (bool, int, float, complex,
                                           str, bytes)):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_is_immutable_constant(v) for v in value)
    return False


# -- AST pass: read-set + totality --------------------------------------------

@dataclass
class _AstResult:
    reads: "frozenset[str] | None"
    totality: Proof
    reasons: "list[str]"


def _source_tree(fn: Callable[..., object],
                 code: types.CodeType) -> "ast.AST | None":
    """The function's AST body node, or None when unrecoverable."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(source)
    except SyntaxError:
        # A lambda sliced out of a larger statement may not reparse;
        # wrap it in parentheses and retry before giving up.
        try:
            tree = ast.parse(f"({source.strip()})")
        except SyntaxError:
            return None
    candidates: "list[ast.AST]" = []
    want_args = code.co_varnames[:code.co_argcount]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            args = tuple(a.arg for a in node.args.args)
            if args == tuple(want_args):
                candidates.append(node)
    if len(candidates) != 1:
        return None  # ambiguous source line: fail closed
    return candidates[0]


class _AstReads:
    """Read-set extraction over the function body AST.

    Tracks the tuple parameter and its simple aliases through the
    modelled access patterns; any unmodelled use of the parameter
    makes the read-set UNKNOWN (never silently incomplete).
    """

    def __init__(self, func: ast.AST, param: "str | None"):
        self.func = func
        self.param = param
        self.reads: "set[str]" = set()
        self.unknown = False
        self.reasons: "list[str]" = []
        #: Alias name -> "param" | "values" (single-assignment only).
        self.aliases: "dict[str, str]" = {}
        #: AST nodes already consumed by an enclosing pattern.
        self._consumed: "set[int]" = set()

    def run(self) -> _AstResult:
        if self.param is None:
            return _AstResult(None, Proof.UNKNOWN,
                              ["callable takes no tuple parameter"])
        body = (self.func.body if isinstance(self.func, ast.Lambda)
                else self.func)
        self._collect_aliases(body)
        self._walk(body, shadowed=frozenset())
        reads = None if self.unknown else frozenset(self.reads)
        totality = self._totality(body) if not self.unknown else Proof.UNKNOWN
        return _AstResult(reads, totality, self.reasons)

    # aliases ---------------------------------------------------------
    def _collect_aliases(self, body: ast.AST) -> None:
        assigned: "dict[str, int]" = {}
        for node in ast.walk(body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    assigned[target.id] = assigned.get(target.id, 0) + 1
                    kind = self._source_kind(node.value)
                    if kind is not None:
                        self.aliases[target.id] = kind
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign,
                                   ast.For, ast.withitem)):
                for name in _assigned_names(node):
                    assigned[name] = assigned.get(name, 0) + 2
        # Re-assigned names are not trustworthy aliases.
        for name, count in assigned.items():
            if count > 1:
                self.aliases.pop(name, None)

    def _source_kind(self, value: ast.AST) -> "str | None":
        if isinstance(value, ast.Name) and value.id == self.param:
            return "param"
        if (isinstance(value, ast.Attribute) and value.attr == "values"
                and isinstance(value.value, ast.Name)
                and value.value.id == self.param):
            return "values"
        return None

    def _kind_of(self, node: ast.AST) -> "str | None":
        """'param' / 'values' when ``node`` denotes the tuple (part)."""
        if isinstance(node, ast.Name):
            if node.id == self.param:
                return "param"
            return self.aliases.get(node.id)
        if (isinstance(node, ast.Attribute) and node.attr == "values"):
            inner = self._kind_of(node.value)
            if inner == "param":
                return "values"
        return None

    # the walk --------------------------------------------------------
    def _mark_unknown(self, reason: str) -> None:
        self.unknown = True
        self.reasons.append(reason)

    def _walk(self, node: ast.AST,
              shadowed: "frozenset[str]") -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, shadowed)

    def _visit(self, node: ast.AST, shadowed: "frozenset[str]") -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id in self.aliases \
                and self._source_kind(node.value) is not None:
            # A tracked single-assignment alias (``v = item.values``):
            # the value is consumed by the alias table, not an escape.
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            inner_args = frozenset(a.arg for a in node.args.args)
            if self.param in inner_args:
                # The nested scope shadows the tuple parameter: its
                # body cannot read our tuple through that name.
                return
            if any(isinstance(sub, ast.Name) and sub.id == self.param
                   for sub in ast.walk(node)):
                self._mark_unknown(
                    "tuple parameter captured by a nested function")
            return
        if isinstance(node, ast.Subscript):
            kind = self._kind_of(node.value)
            if kind is not None:
                key = node.slice
                if isinstance(key, ast.Constant) and isinstance(
                        key.value, str):
                    self.reads.add(key.value)
                    self._consumed.add(id(node.value))
                    self._visit(key, shadowed)
                    return
                self._mark_unknown(
                    "tuple subscript with a computed key")
                return
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr == "get"
                    and self._kind_of(func.value) is not None):
                self._consumed.add(id(func.value))
                if node.args and isinstance(node.args[0], ast.Constant) \
                        and isinstance(node.args[0].value, str):
                    self.reads.add(node.args[0].value)
                    for extra in node.args[1:]:
                        self._visit(extra, shadowed)
                    return
                self._mark_unknown("tuple .get() with a computed key")
                return
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("attributes", "keys", "items",
                                      "__iter__")
                    and self._kind_of(func.value) is not None):
                self._consumed.add(id(func.value))
                self._mark_unknown(
                    f"reads the whole attribute set via .{func.attr}()")
                return
        if isinstance(node, ast.Compare) and len(node.ops) == 1 \
                and isinstance(node.ops[0], (ast.In, ast.NotIn)) \
                and self._kind_of(node.comparators[0]) is not None:
            self._consumed.add(id(node.comparators[0]))
            probe = node.left
            if isinstance(probe, ast.Constant) and isinstance(
                    probe.value, str):
                self.reads.add(probe.value)
                return
            self._mark_unknown("membership probe with a computed key")
            return
        if isinstance(node, ast.Attribute):
            kind = self._kind_of(node.value)
            if kind == "param":
                if node.attr in TUPLE_METADATA or node.attr == "values":
                    self._consumed.add(id(node.value))
                    # Bare ``item.values`` not consumed by a modelled
                    # pattern: the dict escapes.
                    if node.attr == "values" and not self._is_modelled(
                            node):
                        self._mark_unknown(
                            "the values dict escapes the modelled "
                            "access patterns")
                    return
                self._mark_unknown(
                    f"unmodelled tuple attribute .{node.attr}")
                return
        if isinstance(node, ast.Name) and node.id == self.param \
                and node.id not in shadowed:
            if id(node) not in self._consumed:
                self._mark_unknown(
                    "tuple parameter escapes the modelled access "
                    "patterns")
            return
        self._walk(node, shadowed)

    def _is_modelled(self, values_attr: ast.Attribute) -> bool:
        """Whether this ``.values`` node was consumed by a pattern."""
        return id(values_attr) in self._consumed

    # totality --------------------------------------------------------
    def _totality(self, body: ast.AST) -> Proof:
        """PROVEN only for trivially non-raising predicate bodies."""
        if isinstance(self.func, ast.Lambda):
            return (Proof.PROVEN
                    if self._total_expr(self.func.body)
                    else Proof.UNKNOWN)
        if isinstance(self.func, ast.FunctionDef) \
                and len(self.func.body) == 1 \
                and isinstance(self.func.body[0], ast.Return) \
                and self.func.body[0].value is not None:
            return (Proof.PROVEN
                    if self._total_expr(self.func.body[0].value)
                    else Proof.UNKNOWN)
        return Proof.UNKNOWN

    def _total_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.BoolOp):
            return all(self._total_expr(v) for v in node.values)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return self._total_expr(node.operand)
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            op = node.ops[0]
            if isinstance(op, (ast.Is, ast.IsNot)):
                return (self._total_expr(node.left)
                        and self._total_expr(node.comparators[0]))
            if isinstance(op, (ast.In, ast.NotIn)):
                container = node.comparators[0]
                return (self._kind_of(container) is not None
                        or isinstance(container,
                                      (ast.Tuple, ast.List, ast.Set)))
        if isinstance(node, ast.Call):
            func = node.func
            return (isinstance(func, ast.Attribute)
                    and func.attr == "get"
                    and self._kind_of(func.value) is not None
                    and all(isinstance(a, ast.Constant)
                            for a in node.args))
        return False


def _assigned_names(node: ast.AST) -> "list[str]":
    target = getattr(node, "target", None)
    if target is None:
        target = getattr(node, "optional_vars", None)
    names: "list[str]" = []
    if target is not None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                names.append(sub.id)
    return names


# -- bytecode fallback read-set -----------------------------------------------

def _bytecode_reads(code: types.CodeType) -> "frozenset[str] | None":
    """Small symbolic machine for source-less callables.

    Models only the canonical chains (``LOAD_FAST param`` →
    ``LOAD_ATTR values`` → ``LOAD_CONST k`` → ``BINARY_SUBSCR`` and the
    ``.get`` method call); any other consumption of the parameter
    yields UNKNOWN.
    """
    param = _param_name(code)
    if param is None:
        return None
    if param in code.co_cellvars:
        # The parameter is captured by a nested function; its reads
        # happen through LOAD_DEREF in a nested code object that this
        # single-frame machine does not model.
        return None
    reads: "set[str]" = set()
    # Symbolic top-of-stack trace: (kind, payload) where kind is one
    # of "param", "values", "getter", "const", "other".
    stack: "list[tuple[str, object]]" = []

    def push(kind: str, payload: object = None) -> None:
        stack.append((kind, payload))

    def pop(n: int = 1) -> "list[tuple[str, object]]":
        out = []
        for _ in range(n):
            out.append(stack.pop() if stack else ("other", None))
        return out

    for instr in dis.get_instructions(code):
        op, arg = instr.opname, instr.argval
        if op in ("RESUME", "CACHE", "NOP", "PRECALL", "POP_TOP",
                  "RETURN_VALUE", "RETURN_CONST", "COPY_FREE_VARS",
                  "MAKE_CELL", "EXTENDED_ARG", "PUSH_NULL"):
            if op == "POP_TOP":
                pop()
            continue
        if op == "LOAD_FAST":
            push("param" if arg == param else "other")
        elif op == "LOAD_CONST":
            push("const", arg)
        elif op in ("LOAD_GLOBAL", "LOAD_NAME", "LOAD_DEREF"):
            push("other")
        elif op in ("LOAD_ATTR", "LOAD_METHOD"):
            (top,) = pop()
            if top[0] == "param" and arg == "values":
                push("values")
            elif top[0] in ("param", "values") and arg == "get":
                push("getter")
            elif top[0] == "param" and arg in TUPLE_METADATA:
                push("other")
            elif top[0] in ("param", "values", "getter"):
                return None  # unmodelled use of the tuple
            else:
                push("other")
        elif op == "BINARY_SUBSCR":
            key, container = pop(2)
            if container[0] in ("param", "values"):
                if key[0] == "const" and isinstance(key[1], str):
                    reads.add(key[1])
                    push("other")
                else:
                    return None
            elif key[0] in ("param", "values", "getter"):
                return None
            else:
                push("other")
        elif op == "CALL":
            n = int(instr.arg or 0)
            args = pop(n)
            (callee,) = pop()
            if callee[0] == "getter":
                key = args[-1] if args else ("other", None)
                if n >= 1 and key[0] == "const" \
                        and isinstance(key[1], str):
                    reads.add(key[1])
                    push("other")
                else:
                    return None
            elif any(a[0] in ("param", "values", "getter")
                     for a in args) or callee[0] in ("param", "values"):
                return None
            else:
                push("other")
        elif op in ("COMPARE_OP", "BINARY_OP", "CONTAINS_OP", "IS_OP"):
            left, right = pop(2)
            if op == "CONTAINS_OP" and right[0] == "const" \
                    and isinstance(right[1], str) \
                    and left[0] in ("param", "values"):
                # ``"k" in item`` compiles with the container on top.
                reads.add(right[1])
            elif any(v[0] in ("param", "values", "getter")
                     for v in (left, right)):
                if left[0] in ("param", "values") \
                        and right[0] == "const" \
                        and isinstance(right[1], str):
                    reads.add(right[1])
                else:
                    return None
            push("other")
        elif op in ("POP_JUMP_IF_FALSE", "POP_JUMP_IF_TRUE",
                    "POP_JUMP_IF_NONE", "POP_JUMP_IF_NOT_NONE"):
            pop()
        elif op in ("JUMP_IF_TRUE_OR_POP", "JUMP_IF_FALSE_OR_POP",
                    "JUMP_FORWARD", "JUMP_BACKWARD", "COPY", "SWAP",
                    "UNARY_NOT", "UNARY_NEGATIVE", "UNARY_POSITIVE",
                    "TO_BOOL"):
            continue  # stack-shape-preserving enough for our model
        elif op == "STORE_FAST":
            (top,) = pop()
            if top[0] in ("param", "values", "getter"):
                return None  # aliasing: AST handles this, not here
        else:
            if any(kind in ("param", "values", "getter")
                   for kind, _ in stack):
                return None
            stack.clear()
    return frozenset(reads)


# -- condition-level verdicts -------------------------------------------------

def _condition_leaves(cond: "Condition") -> "Iterator[Condition]":
    from repro.operators.conditions import And, Not, Or

    if isinstance(cond, (And, Or)):
        for part in cond.parts:
            yield from _condition_leaves(part)
    elif isinstance(cond, Not):
        yield from _condition_leaves(cond.inner)
    else:
        yield cond


def condition_udfs(cond: "Condition") -> "list[FuncCondition]":
    """Every ``FuncCondition`` leaf reachable in a condition tree."""
    from repro.operators.conditions import FuncCondition

    return [leaf for leaf in _condition_leaves(cond)
            if isinstance(leaf, FuncCondition)]


def verify_declaration(cond: "FuncCondition") -> Proof:
    """Prove the declared attribute set covers the inferred read-set."""
    effects = cond.effects
    if effects.reads is None:
        return Proof.UNKNOWN
    if effects.reads <= cond.attributes():
        return Proof.PROVEN
    return Proof.REFUTED


def condition_verified(cond: "Condition") -> Proof:
    """The proof rewrite rules consult before moving a condition.

    PROVEN when every UDF leaf is proven pure, deterministic *and*
    read-verified (its declaration covers its inferred reads) — the
    algebraic leaves (``Comparison`` etc.) are trivially proven.
    Moving an unproven UDF across a Security Shield or a join would
    change what tuples its side effects can observe, so UNKNOWN
    refuses the rewrite (fail closed), matching the three-valued
    hazard flags of :class:`~repro.algebra.rules.RewriteContext`.
    """
    proof = Proof.PROVEN
    for udf in condition_udfs(cond):
        effects = udf.effects
        proof = _meet(proof, effects.purity, effects.determinism,
                      verify_declaration(udf))
        if proof is Proof.REFUTED:
            return proof
    return proof


def shard_safe(cond: "Condition") -> bool:
    """Static shard-safety proof for a select condition.

    A condition may run inside forked shard workers only when every
    UDF leaf is proven pure and deterministic: a stateful closure
    would accumulate per-worker state (results then depend on the
    partitioning), and process-specific values (``id``/``hash``)
    diverge across workers.  UNKNOWN fails closed — the sharded
    executor pins the subtree onto the coordinator instead.
    """
    return all(udf.effects.proven_pure for udf in condition_udfs(cond))


# -- SEC006-SEC008 diagnostics ------------------------------------------------

def udf_diagnostics(cond: "Condition", path: str, *,
                    facts: "StreamFacts | None" = None,
                    streams: "Iterable[str] | None" = None
                    ) -> "list[Diagnostic]":
    """UDF findings for one select condition at ``path``.

    * **SEC006** *error* — the inferred read-set is not covered by the
      declaration (or the declaration is empty on a non-trivial
      callable); *warning* — the read-set is not statically
      determinable, so the declaration is being trusted unverified.
    * **SEC007** *warning* — the callable is provably impure or
      nondeterministic; it sits on an enforcement path (every select
      of a registered query feeds a Security Shield or the delivery
      backstop), where side effects observe tuples that enforcement
      placement is allowed to reorder.
    * **SEC008** *error* — concrete stream facts show attribute-scoped
      sps governing attributes the UDF reads beyond its declaration:
      the undeclared read widens what the sp's pruning was proven
      against (the UDF-shaped form of SEC002).
    """
    diagnostics: "list[Diagnostic]" = []
    for udf in condition_udfs(cond):
        declared = udf.attributes()
        effects = udf.effects
        where = f"{path}<{udf.label}>"
        undeclared = effects.undeclared(declared)
        if undeclared:
            diagnostics.append(Diagnostic(
                "SEC006", Severity.ERROR, where,
                f"UDF {udf.label!r} reads attribute(s) "
                f"{sorted(undeclared)} not in its declared set "
                f"{sorted(declared)}; the optimizer and compiler "
                "reason from the declaration, so the undeclared read "
                "escapes every attribute-based safety proof",
                fixit=f"declare attributes={sorted(effects.reads or ())}"
                      " on the FuncCondition"))
        elif effects.reads is None:
            why = "; ".join(effects.reasons[:2]) or "opaque callable"
            if not declared:
                diagnostics.append(Diagnostic(
                    "SEC006", Severity.ERROR, where,
                    f"UDF {udf.label!r} declares no attributes and its "
                    f"read-set is not statically determinable ({why}); "
                    "an empty declaration on a non-trivial callable is "
                    "an unsound optimizer input",
                    fixit="pass attributes=(...) naming every "
                          "attribute the callable reads"))
            else:
                diagnostics.append(Diagnostic(
                    "SEC006", Severity.WARNING, where,
                    f"UDF {udf.label!r} read-set is not statically "
                    f"verifiable ({why}); trusting the declared "
                    f"attributes {sorted(declared)} unverified"))
        if (effects.purity is Proof.REFUTED
                or effects.determinism is Proof.REFUTED):
            trait = ("impure" if effects.purity is Proof.REFUTED
                     else "nondeterministic")
            why = "; ".join(effects.reasons[:2])
            diagnostics.append(Diagnostic(
                "SEC007", Severity.WARNING, where,
                f"provably {trait} UDF {udf.label!r} on an enforcement "
                f"path ({why}); its side effects observe tuples that "
                "shield placement and execution mode are free to "
                "reorder, and the fail-closed optimizer keeps every "
                "select rewrite off this plan",
                fixit="make the callable a pure function of its tuple "
                      "argument"))
        if facts is not None and facts.known and streams is not None:
            governed = facts.governed_attributes(streams) or frozenset()
            widening = (undeclared or frozenset()) & governed
            if widening:
                diagnostics.append(Diagnostic(
                    "SEC008", Severity.ERROR, where,
                    f"UDF {udf.label!r} reads undeclared attribute(s) "
                    f"{sorted(widening)} governed by attribute-scoped "
                    "sp-batches; the read widens what the sp's pruning "
                    "analysis proved, leaking protected attributes "
                    "into the predicate's decisions",
                    fixit=f"declare {sorted(widening)} so SEC002's "
                          "pruning analysis sees the dependency, or "
                          "stop reading the governed attribute"))
    return diagnostics
