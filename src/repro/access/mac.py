"""Mandatory access control (MAC) mapped onto security punctuations.

Under MAC (Bell-LaPadula style, simple security property only since
streams are read-only) a subject with clearance ``c`` may read an
object classified ``l`` iff ``c >= l``.  Mapping onto sps: an object
classified at level ``l`` is protected by an sp whose SRP names every
level from ``l`` upward (``level:secret``, ``level:top_secret``, ...),
and a subject's principal set is the singleton of its clearance level.
Principal-set intersection then decides exactly ``c >= l``.
"""

from __future__ import annotations

from repro.access.model import AccessControlModel, Subject
from repro.errors import AccessControlError

__all__ = ["MACModel", "DEFAULT_LEVELS", "level_principal"]

#: Classic lattice, lowest first.
DEFAULT_LEVELS = ("unclassified", "confidential", "secret", "top_secret")

_PREFIX = "level:"


def level_principal(level: str) -> str:
    """The sp principal name for a MAC level."""
    return f"{_PREFIX}{level}"


class MACModel(AccessControlModel):
    """MAC over a totally ordered set of sensitivity levels."""

    sp_model_type = "MAC"

    def __init__(self, levels: tuple[str, ...] = DEFAULT_LEVELS):
        if len(set(levels)) != len(levels) or not levels:
            raise AccessControlError("levels must be non-empty and distinct")
        self.levels = tuple(levels)
        self._rank = {level: i for i, level in enumerate(levels)}
        self._clearances: dict[str, str] = {}

    def _require_level(self, level: str) -> None:
        if level not in self._rank:
            raise AccessControlError(f"unknown MAC level: {level!r}")

    def set_clearance(self, subject: Subject | str, level: str) -> None:
        self._require_level(level)
        user_id = subject if isinstance(subject, str) else subject.user_id
        self._clearances[user_id] = level

    def clearance_of(self, user_id: str) -> str:
        try:
            return self._clearances[user_id]
        except KeyError:
            raise AccessControlError(
                f"no clearance set for user {user_id!r}"
            ) from None

    def dominates(self, clearance: str, classification: str) -> bool:
        """``clearance >= classification`` in the lattice."""
        self._require_level(clearance)
        self._require_level(classification)
        return self._rank[clearance] >= self._rank[classification]

    def principals_for(self, subject: Subject) -> frozenset[str]:
        return frozenset({level_principal(self.clearance_of(subject.user_id))})

    def principals_for_classification(self, level: str) -> frozenset[str]:
        """SRP principal names an sp must carry for an object at ``level``.

        Every clearance from ``level`` upward may read the object.
        """
        self._require_level(level)
        rank = self._rank[level]
        return frozenset(
            level_principal(name) for name in self.levels[rank:]
        )
