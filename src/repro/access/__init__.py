"""Access-control substrate: subjects, rights, RBAC / DAC / MAC models."""

from repro.access.dac import DACModel, user_principal
from repro.access.mac import DEFAULT_LEVELS, MACModel, level_principal
from repro.access.model import AccessControlModel, Right, Subject
from repro.access.rbac import RBACModel, Session

__all__ = [
    "AccessControlModel",
    "DACModel",
    "DEFAULT_LEVELS",
    "MACModel",
    "RBACModel",
    "Right",
    "Session",
    "Subject",
    "level_principal",
    "user_principal",
]
