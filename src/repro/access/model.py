"""Subjects, objects and rights (paper Section II.A).

An *object* is an entity containing information — streams, tuples and
tuple attributes in a streaming system.  A *subject* invokes requests
to access objects; subjects here are the users who register continuous
queries (query specifiers).  Subjects acquire *rights*; the paper (and
this reproduction) focuses on the READ right, since stream systems are
read-only, but the enum carries the extension points the paper
mentions.

An :class:`AccessControlModel` maps subjects to the *principal names*
that are matched against sp SRPs.  For RBAC those are role names; for
DAC they are per-user pseudo-principals; for MAC they are clearance
levels.  This indirection is what makes the sp mechanism
model-agnostic: the punctuation framework only ever intersects
principal sets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AccessControlError

__all__ = ["Right", "Subject", "AccessControlModel"]


class Right(enum.Enum):
    """Privileges a subject can hold on an object."""

    READ = "read"
    UPDATE = "update"
    DELETE = "delete"


@dataclass
class Subject:
    """A user known to the DSMS."""

    user_id: str
    name: str = ""
    #: Attributes models may use (e.g. MAC clearance level).
    attributes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.user_id:
            raise AccessControlError("subject requires a user_id")
        if not self.name:
            self.name = self.user_id

    def __hash__(self) -> int:
        return hash(self.user_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subject):
            return NotImplemented
        return self.user_id == other.user_id


class AccessControlModel:
    """Maps subjects to the principal names matched against sp SRPs."""

    #: The model-type string carried in sp SRPs.
    sp_model_type: str = "GENERIC"

    def principals_for(self, subject: Subject) -> frozenset[str]:
        """Principal names under which ``subject`` may be authorized."""
        raise NotImplementedError

    def holds(self, subject: Subject, right: Right) -> bool:
        """Whether the model lets ``subject`` hold ``right`` at all.

        The base model grants READ only, matching the paper's scope.
        """
        return right is Right.READ
