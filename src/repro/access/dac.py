"""Discretionary access control (DAC) mapped onto security punctuations.

The paper states (Section II.A) that the sp framework is general: any
access-control model can be implemented with sps.  Under DAC, the data
owner grants access to individual *users*.  We map each user to a
per-user pseudo-principal ``user:<id>``; a data provider grants user
``alice`` access by emitting an sp whose SRP names ``user:alice``.
The punctuation machinery (intersection of principal sets) is entirely
unchanged — only the naming convention differs.
"""

from __future__ import annotations

from repro.access.model import AccessControlModel, Subject
from repro.errors import AccessControlError

__all__ = ["DACModel", "user_principal"]

_PREFIX = "user:"


def user_principal(user_id: str) -> str:
    """The sp principal name for a DAC user."""
    if not user_id:
        raise AccessControlError("user_id must be non-empty")
    return f"{_PREFIX}{user_id}"


class DACModel(AccessControlModel):
    """DAC: each subject is authorized only under its own principal.

    Grant lists are kept per object namespace by the *data providers*
    (that is the discretionary part); the DSMS side only needs the
    subject → principal mapping.
    """

    sp_model_type = "DAC"

    def __init__(self):
        self._subjects: dict[str, Subject] = {}

    def add_user(self, subject: Subject | str) -> Subject:
        if isinstance(subject, str):
            subject = Subject(subject)
        self._subjects[subject.user_id] = subject
        return subject

    def principals_for(self, subject: Subject) -> frozenset[str]:
        if subject.user_id not in self._subjects:
            raise AccessControlError(f"unknown user: {subject.user_id!r}")
        return frozenset({user_principal(subject.user_id)})
