"""Flat role-based access control (RBAC).

The paper uses flat RBAC (Sandhu et al.) as its running model: query
specifiers activate their roles when signing into the DSMS, every
specifier belongs to at least one role, and the role assignment may not
change while the specifier is registered to receive results of a
running query.  This module implements exactly that, including the
registration lock.
"""

from __future__ import annotations

from repro.access.model import AccessControlModel, Subject
from repro.core.bitmap import RoleUniverse
from repro.errors import AccessControlError

__all__ = ["RBACModel", "Session"]


class Session:
    """A sign-in session with a set of activated roles."""

    __slots__ = ("subject", "active_roles")

    def __init__(self, subject: Subject, active_roles: frozenset[str]):
        self.subject = subject
        self.active_roles = active_roles

    def __repr__(self) -> str:
        return (f"Session({self.subject.user_id!r}, "
                f"roles={sorted(self.active_roles)})")


class RBACModel(AccessControlModel):
    """Flat RBAC: users, roles, user-role assignment, sessions."""

    sp_model_type = "RBAC"

    def __init__(self, universe: RoleUniverse | None = None):
        self.universe = universe if universe is not None else RoleUniverse()
        self._assignments: dict[str, set[str]] = {}
        self._subjects: dict[str, Subject] = {}
        self._locked: dict[str, int] = {}
        self._sessions: dict[str, Session] = {}

    # -- administration ------------------------------------------------------
    def add_role(self, role: str) -> None:
        """Register a role in the system's role universe."""
        self.universe.register(role)

    def add_user(self, subject: Subject | str) -> Subject:
        if isinstance(subject, str):
            subject = Subject(subject)
        self._subjects[subject.user_id] = subject
        self._assignments.setdefault(subject.user_id, set())
        return subject

    def assign_role(self, user_id: str, role: str) -> None:
        """Assign ``role`` to a user.

        Raises if the user is locked (registered to receive results of
        a currently executing query) — the paper forbids assignment
        changes in that state.
        """
        self._require_unlocked(user_id)
        self._require_user(user_id)
        if role not in self.universe:
            raise AccessControlError(f"unknown role: {role!r}")
        self._assignments[user_id].add(role)

    def revoke_role(self, user_id: str, role: str) -> None:
        self._require_unlocked(user_id)
        self._require_user(user_id)
        self._assignments[user_id].discard(role)

    def roles_of(self, user_id: str) -> frozenset[str]:
        self._require_user(user_id)
        return frozenset(self._assignments[user_id])

    def _require_user(self, user_id: str) -> None:
        if user_id not in self._subjects:
            raise AccessControlError(f"unknown user: {user_id!r}")

    def _require_unlocked(self, user_id: str) -> None:
        if self._locked.get(user_id, 0) > 0:
            raise AccessControlError(
                f"user {user_id!r} is registered to receive results of a "
                "running query; role assignment cannot change"
            )

    # -- sessions --------------------------------------------------------------
    def sign_in(self, user_id: str,
                roles: frozenset[str] | None = None) -> Session:
        """Activate roles for a user (all assigned roles by default).

        Every query specifier must belong to at least one role.
        """
        self._require_user(user_id)
        assigned = frozenset(self._assignments[user_id])
        active = assigned if roles is None else frozenset(roles)
        if not active:
            raise AccessControlError(
                f"user {user_id!r} must activate at least one role"
            )
        if not active <= assigned:
            raise AccessControlError(
                f"user {user_id!r} cannot activate unassigned roles "
                f"{sorted(active - assigned)}"
            )
        session = Session(self._subjects[user_id], active)
        self._sessions[user_id] = session
        return session

    def sign_out(self, user_id: str) -> None:
        if self._locked.get(user_id, 0) > 0:
            raise AccessControlError(
                f"user {user_id!r} has running queries; deregister first"
            )
        self._sessions.pop(user_id, None)

    def session_of(self, user_id: str) -> Session | None:
        return self._sessions.get(user_id)

    # -- query-registration locking -----------------------------------------
    def lock(self, user_id: str) -> None:
        """Mark a user as receiving results of one more running query."""
        self._require_user(user_id)
        self._locked[user_id] = self._locked.get(user_id, 0) + 1

    def unlock(self, user_id: str) -> None:
        count = self._locked.get(user_id, 0)
        if count <= 0:
            raise AccessControlError(f"user {user_id!r} is not locked")
        self._locked[user_id] = count - 1

    def is_locked(self, user_id: str) -> bool:
        return self._locked.get(user_id, 0) > 0

    # -- AccessControlModel -----------------------------------------------------
    def principals_for(self, subject: Subject) -> frozenset[str]:
        """Active roles of a signed-in subject, else assigned roles."""
        session = self._sessions.get(subject.user_id)
        if session is not None:
            return session.active_roles
        return self.roles_of(subject.user_id)
