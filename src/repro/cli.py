"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments [--quick]``
    Regenerate every figure of the paper's Section VII evaluation.
``explain <cql> [--roles R1,R2] [--optimize]``
    Parse a CQL SELECT, shield it for the given roles, optionally
    optimize, and print the (cost-annotated) plan.
``sp <insert-sp-statement>``
    Parse an ``INSERT SP`` statement and print the resulting
    punctuation in the paper's alphanumeric format.
``wire <file>``
    Validate a JSON-lines stream file: element counts, ordering,
    sp:tuple ratio.
``shell``
    Interactive DSMS console over a live session (see
    :mod:`repro.shell`).
``stats [file]``
    Execute a (CQL) query over a wire-format stream — or the built-in
    demo stream — and print per-operator stage metrics.
``audit [file]``
    Same execution with the audit trail enabled; print (or export) the
    security decisions, or explain the fate of one tuple id.
``why <tid> [file]``
    Same execution with causal tracing + audit enabled; reconstruct
    the full security decision chain (governing sp → resolved policy →
    shield/filter verdicts → delivery) for one tuple id, from the
    trace — no replay.
``trace [file] [--name N] [--jsonl PATH]``
    Same execution with causal tracing enabled; print the recorded
    spans (trace/span/parent ids, monotonic timestamps) or export the
    flight-recorder contents as JSON lines.
``metrics [file] [--format prom|json] [--serve [--port N]]``
    Same execution with the metrics registry enabled; emit the
    collected metrics as Prometheus text exposition or JSON, or keep
    serving them on an HTTP scrape endpoint.
``monitor [file] [--frames N] [--interval S] [--no-clear]``
    Replay the stream through a live session while rendering a
    top-style dashboard: operator throughput, latency percentiles,
    shield verdicts, policy-propagation lag and health alerts.
``verify [--seed N] [--runs K] [--faults] [--replay FILE...]``
    Differential verification: fuzz random scenarios, run every engine
    configuration (element-wise/batched, NL/SPIndex join, optimizer
    levels, baselines) against the reference oracle, optionally inject
    sp faults, and shrink any mismatch to a minimal JSON reproducer.
``lint <file>... [--format text|json] [--strict]``
    Static security analysis of plan-spec / scenario JSON files:
    shield coverage (SEC001), attribute-leak (SEC002), redundant
    shields (SEC003), rewrite preconditions (SEC004), spec
    consistency (SEC005) and UDF effects — undeclared reads (SEC006),
    impure/nondeterministic callables (SEC007), sp-pruning widened by
    a UDF read (SEC008).  Exit 1 on error-severity findings (with
    ``--strict``: also on warnings).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

__all__ = ["main"]


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    run_all(0.2 if args.quick else 1.0)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.algebra.cost import CostModel
    from repro.algebra.explain import explain
    from repro.algebra.expressions import ShieldExpr
    from repro.algebra.optimizer import Optimizer
    from repro.algebra.rules import RewriteContext
    from repro.cql.translator import compile_statement
    from repro.core.punctuation import SecurityPunctuation

    expr = compile_statement(args.statement)
    if isinstance(expr, SecurityPunctuation):
        print("error: 'explain' takes a SELECT statement; "
              "use the 'sp' command for INSERT SP", file=sys.stderr)
        return 2
    if args.roles:
        roles = frozenset(r.strip() for r in args.roles.split(",")
                          if r.strip())
        expr = ShieldExpr(expr, roles)
    cost_model = CostModel()
    if args.optimize:
        from repro.algebra.expressions import ScanExpr, walk
        streams = frozenset(node.stream_id for node in walk(expr)
                            if isinstance(node, ScanExpr))
        optimizer = Optimizer(cost_model,
                              RewriteContext(policy_streams=streams))
        result = optimizer.optimize(expr)
        print(f"-- optimized: {result.initial_cost:,.0f} -> "
              f"{result.cost:,.0f} est. cost "
              f"({result.improvement:.0%} cheaper)\n")
        expr = result.plan
    print(explain(expr, cost_model))
    return 0


def _cmd_sp(args: argparse.Namespace) -> int:
    from repro.cql.translator import compile_statement
    from repro.core.punctuation import SecurityPunctuation

    sp = compile_statement(args.statement, provider=args.provider)
    if not isinstance(sp, SecurityPunctuation):
        print("error: 'sp' takes an INSERT SP statement",
              file=sys.stderr)
        return 2
    print(sp.to_text())
    return 0


def _cmd_wire(args: argparse.Namespace) -> int:
    from repro.stream.wire import load_stream

    n_tuples = n_sps = 0
    last_ts = float("-inf")
    ordered = True
    with open(args.path, encoding="utf-8") as fp:
        for element in load_stream(fp):
            if element.ts < last_ts:
                ordered = False
            last_ts = element.ts
            if hasattr(element, "srp"):
                n_sps += 1
            else:
                n_tuples += 1
    print(f"tuples:   {n_tuples}")
    print(f"sps:      {n_sps}")
    if n_sps:
        print(f"ratio:    1/{n_tuples / n_sps:.1f}")
    print(f"ordered:  {'yes' if ordered else 'NO'}")
    return 0 if ordered else 1


def _demo_elements():
    """The quickstart HeartRate stream (used when no file is given)."""
    from repro.core.punctuation import SecurityPunctuation
    from repro.stream.tuples import DataTuple

    def reading(bpm, ts):
        return DataTuple("HeartRate", 120,
                         {"patient_id": 120, "beats_per_min": bpm}, ts)

    return "HeartRate", ("patient_id", "beats_per_min"), [
        SecurityPunctuation.grant(["D", "ND"], ts=0.0, provider="patient"),
        reading(72, 1.0),
        reading(75, 2.0),
        SecurityPunctuation.grant(["D", "C"], ts=3.0, provider="patient"),
        reading(148, 4.0),
    ]


def _load_wire_elements(path: str):
    """Stream id, attributes and elements of one wire-format file."""
    from repro.stream.tuples import DataTuple
    from repro.stream.wire import load_stream

    elements = []
    sids: set[str] = set()
    attributes: dict[str, None] = {}
    with open(path, encoding="utf-8") as fp:
        for element in load_stream(fp):
            elements.append(element)
            if isinstance(element, DataTuple):
                sids.add(element.sid)
                for name in element.values:
                    attributes.setdefault(name)
    if not sids:
        raise ReproError(f"{path}: no data tuples (cannot infer a schema)")
    if len(sids) > 1:
        raise ReproError(
            f"{path}: multiple stream ids {sorted(sids)}; stats/audit "
            "runs take a single-stream file")
    return sids.pop(), tuple(attributes), elements


def _observed_run(args: argparse.Namespace):
    """Build a DSMS with in-memory observability, run, return it."""
    from repro.algebra.expressions import ScanExpr
    from repro.engine.api import OptimizeLevel
    from repro.engine.dsms import DSMS
    from repro.observability import Observability
    from repro.stream.schema import StreamSchema

    if args.path:
        stream_id, attributes, elements = _load_wire_elements(args.path)
    else:
        stream_id, attributes, elements = _demo_elements()
    roles = frozenset(r.strip() for r in args.roles.split(",") if r.strip())
    if not roles:
        raise ReproError("provide at least one role via --roles")
    if args.shards is not None and args.shards < 1:
        raise ReproError("--shards takes a worker count >= 1")
    if args.query:
        from repro.core.punctuation import SecurityPunctuation
        from repro.cql.translator import compile_statement

        expr = compile_statement(args.query)
        if isinstance(expr, SecurityPunctuation):
            raise ReproError(
                "--query takes a CQL SELECT, not an INSERT SP")
    else:
        expr = ScanExpr(stream_id)

    dsms = DSMS(observability=Observability.in_memory())
    dsms.register_stream(StreamSchema(stream_id, attributes), elements)
    dsms.register_query("q", expr, roles=roles)
    results = dsms.run(optimize=OptimizeLevel(args.optimize),
                       shards=args.shards)
    return dsms, results


def _add_observed_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", nargs="?", default=None,
                        help="wire-format stream file (default: built-in "
                             "HeartRate demo stream)")
    parser.add_argument("--query", default=None,
                        help="CQL SELECT to run (default: scan the stream)")
    parser.add_argument("--roles", default="ND",
                        help="comma-separated query roles (default: ND)")
    parser.add_argument("--optimize", default="none",
                        choices=["none", "per_query", "workload"],
                        help="plan optimization level")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run on the partitioned multi-process "
                             "executor with N shard workers (default: "
                             "single-process)")


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.metrics.reporting import format_table
    from repro.observability.stats import StageStats, aggregate_stages

    dsms, results = _observed_run(args)
    report = dsms.last_report
    assert report is not None
    print(format_table(
        StageStats.HEADERS, [s.to_row() for s in report.stages],
        title="Per-operator stage metrics"))
    totals = aggregate_stages(report.stages)
    print()
    print(f"elements in:  {report.elements_in} "
          f"({report.tuples_in} tuples, {report.sps_in} sps)")
    print(f"delivered:    "
          f"{sum(len(r.tuples) for r in results.values())} tuples")
    print(f"drops:        {totals['drops']}")
    print(f"wall time:    {report.wall_time:.4f}s")
    analyzer = dsms.analyzer
    print(f"analyzer:     {analyzer.sps_in} sps in, "
          f"{analyzer.sps_out} out, "
          f"{analyzer.conservative_refinements} conservative refinements")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    dsms, _results = _observed_run(args)
    audit = dsms.audit
    assert audit is not None
    if args.jsonl:
        count = audit.dump_jsonl(args.jsonl)
        print(f"wrote {count} audit events to {args.jsonl}")
        return 0
    if args.explain is not None:
        tid: object = args.explain
        events = audit.explain(tid)
        if not events and tid.lstrip("-").isdigit():
            events = audit.explain(int(tid))
        if not events:
            print(f"no audit events for tuple id {tid!r}")
            return 1
        for event in events:
            print(event)
        return 0
    events = audit.events(kind=args.kind)
    for event in events[-args.limit:]:
        print(event)
    print()
    summary = ", ".join(f"{kind}={count}"
                        for kind, count in sorted(audit.counts.items()))
    print(f"recorded: {summary or 'nothing'}"
          + (f" (evicted {audit.evicted})" if audit.evicted else ""))
    return 0


def _cmd_why(args: argparse.Namespace) -> int:
    from repro.observability import reconstruct_why

    dsms, _results = _observed_run(args)
    tracer = dsms.observability.tracer
    tid: object = args.tid
    report = reconstruct_why(tid, tracer.events(), audit=dsms.audit)
    if not report.found() and args.tid.lstrip("-").isdigit():
        tid = int(args.tid)
        report = reconstruct_why(tid, tracer.events(), audit=dsms.audit)
    print(report.render_text())
    return 0 if report.found() else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    dsms, _results = _observed_run(args)
    tracer = dsms.observability.tracer
    if args.jsonl:
        count = tracer.recorder.dump_jsonl(args.jsonl)
        print(f"wrote {count} spans to {args.jsonl}")
        return 0
    events = tracer.events(args.name)
    for event in events[-args.limit:]:
        print(event)
    print()
    print(f"recorded: {len(events)} span(s) across {tracer.traces} "
          f"trace(s) ({tracer.sampled_traces} sampled)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.observability.export import (render_json,
                                            render_prometheus,
                                            serve_metrics)

    dsms, _results = _observed_run(args)
    registry = dsms.observability.metrics
    assert registry is not None
    if args.format == "json":
        print(render_json(registry))
    else:
        sys.stdout.write(render_prometheus(registry))
    if args.serve:
        server = serve_metrics(registry, host=args.host, port=args.port)
        print(f"serving metrics at {server.url} (Ctrl-C to stop)",
              file=sys.stderr)
        try:
            import threading
            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import time as _time

    from repro.algebra.expressions import ScanExpr
    from repro.engine.api import OptimizeLevel
    from repro.engine.dsms import DSMS
    from repro.observability import Observability
    from repro.observability.health import HealthMonitor
    from repro.observability.monitor import MonitorView, run_monitor
    from repro.stream.schema import StreamSchema

    if args.path:
        stream_id, attributes, elements = _load_wire_elements(args.path)
    else:
        stream_id, attributes, elements = _demo_elements()
    roles = frozenset(r.strip() for r in args.roles.split(",")
                      if r.strip())
    if not roles:
        raise ReproError("provide at least one role via --roles")
    if args.query:
        from repro.core.punctuation import SecurityPunctuation
        from repro.cql.translator import compile_statement

        expr = compile_statement(args.query)
        if isinstance(expr, SecurityPunctuation):
            raise ReproError(
                "--query takes a CQL SELECT, not an INSERT SP")
    else:
        expr = ScanExpr(stream_id)

    dsms = DSMS(observability=Observability.in_memory())
    dsms.register_stream(StreamSchema(stream_id, attributes), [])
    dsms.register_query("q", expr, roles=roles)
    session = dsms.open_session(optimize=OptimizeLevel(args.optimize))
    instruments = dsms.observability.instruments
    assert instruments is not None
    health = HealthMonitor(instruments,
                           tracer=dsms.observability.tracer,
                           stall_after=args.stall_after)
    view = MonitorView(
        instruments,
        stages=lambda: session.report().stages,
        health=health)

    # Replay the stream in frame-sized slices so each rendered frame
    # shows genuinely live, still-moving numbers.
    frames = max(1, args.frames)
    chunk = max(1, -(-len(elements) // frames)) if elements else 1
    clear = not args.no_clear
    for start in range(0, len(elements), chunk):
        for element in elements[start:start + chunk]:
            session.push(stream_id, element)
        run_monitor(view, frames=1, interval=0, clear=clear)
        if args.interval > 0:
            _time.sleep(args.interval)
    session.close()
    run_monitor(view, frames=1, interval=0, clear=clear)
    critical = sum(1 for alert in health.alerts
                   if alert.severity == "critical")
    return 1 if critical else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.speclint import lint_file

    reports = {path: lint_file(path) for path in args.paths}
    n_errors = sum(len(report.errors) for report in reports.values())
    n_warnings = sum(len(report.warnings) for report in reports.values())
    if args.format == "json":
        print(json.dumps({
            "files": {path: report.to_dict()
                      for path, report in reports.items()},
            "errors": n_errors,
            "warnings": n_warnings,
        }, indent=2, sort_keys=True))
    else:
        for path, report in reports.items():
            for diagnostic in report.sorted():
                print(f"{path}: {diagnostic}")
        print(f"{len(reports)} file(s) checked: {n_errors} error(s), "
              f"{n_warnings} warning(s)")
    if n_errors or (args.strict and n_warnings):
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.campaign import replay_cases, run_campaign

    mismatches = 0
    if args.replay:
        result = replay_cases(list(args.replay), faults=args.faults)
        mismatches += len(result.mismatches)
    else:
        result = run_campaign(seed=args.seed, runs=args.runs,
                              faults=args.faults,
                              save_failing=args.save_failing)
        mismatches += len(result.mismatches)
    return 1 if mismatches else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Security-punctuation framework (ICDE 2008 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="regenerate the Section VII figures")
    experiments.add_argument("--quick", action="store_true",
                             help="CI-sized workloads")
    experiments.set_defaults(fn=_cmd_experiments)

    explain_cmd = sub.add_parser("explain",
                                 help="show the plan of a CQL SELECT")
    explain_cmd.add_argument("statement")
    explain_cmd.add_argument("--roles", default="",
                             help="comma-separated query roles")
    explain_cmd.add_argument("--optimize", action="store_true")
    explain_cmd.set_defaults(fn=_cmd_explain)

    sp_cmd = sub.add_parser("sp", help="translate an INSERT SP statement")
    sp_cmd.add_argument("statement")
    sp_cmd.add_argument("--provider", default=None)
    sp_cmd.set_defaults(fn=_cmd_sp)

    wire = sub.add_parser("wire", help="validate a wire-format stream file")
    wire.add_argument("path")
    wire.set_defaults(fn=_cmd_wire)

    shell = sub.add_parser("shell",
                           help="interactive DSMS console (CQL + PUSH)")
    shell.set_defaults(fn=_cmd_shell)

    stats = sub.add_parser(
        "stats", help="run a query and print per-operator stage metrics")
    _add_observed_arguments(stats)
    stats.set_defaults(fn=_cmd_stats)

    audit = sub.add_parser(
        "audit", help="run a query and print the security audit trail")
    _add_observed_arguments(audit)
    audit.add_argument("--kind", default=None,
                       help="only events of this kind (e.g. shield.drop)")
    audit.add_argument("--explain", default=None, metavar="TID",
                       help="explain every decision that touched a tuple id")
    audit.add_argument("--jsonl", default=None, metavar="PATH",
                       help="export held events as JSON lines and exit")
    audit.add_argument("--limit", type=int, default=50,
                       help="print at most N most recent events")
    audit.set_defaults(fn=_cmd_audit)

    why = sub.add_parser(
        "why",
        help="reconstruct the security decision chain for a tuple id")
    why.add_argument("tid", help="tuple id to explain")
    _add_observed_arguments(why)
    why.set_defaults(fn=_cmd_why)

    trace = sub.add_parser(
        "trace",
        help="run a query with causal tracing and print/export spans")
    _add_observed_arguments(trace)
    trace.add_argument("--name", default=None,
                       help="only spans with this name "
                            "(e.g. provenance.shield.drop)")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="export recorded spans as JSON lines and exit")
    trace.add_argument("--limit", type=int, default=50,
                       help="print at most N most recent spans")
    trace.set_defaults(fn=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run a query and emit the collected engine metrics")
    _add_observed_arguments(metrics)
    metrics.add_argument("--format", default="prom",
                         choices=["prom", "json"],
                         help="exposition format (default: prom)")
    metrics.add_argument("--serve", action="store_true",
                         help="keep serving /metrics over HTTP after "
                              "the run")
    metrics.add_argument("--host", default="127.0.0.1",
                         help="scrape endpoint bind host")
    metrics.add_argument("--port", type=int, default=9464,
                         help="scrape endpoint port (default: 9464)")
    metrics.set_defaults(fn=_cmd_metrics)

    monitor = sub.add_parser(
        "monitor",
        help="replay a stream in a live session with a top-style view")
    _add_observed_arguments(monitor)
    monitor.add_argument("--frames", type=int, default=5,
                         help="dashboard frames to render (default: 5)")
    monitor.add_argument("--interval", type=float, default=0.5,
                         help="seconds between frames (default: 0.5)")
    monitor.add_argument("--no-clear", action="store_true",
                         help="append frames instead of redrawing "
                              "(for logs/pipes)")
    monitor.add_argument("--stall-after", type=float, default=5.0,
                         help="stalled-stream alert threshold in "
                              "seconds")
    monitor.set_defaults(fn=_cmd_monitor)

    verify = sub.add_parser(
        "verify",
        help="differential verification against the reference oracle")
    verify.add_argument("--seed", type=int, default=0,
                        help="fuzz seed (default: 0)")
    verify.add_argument("--runs", type=int, default=25,
                        help="scenarios to generate (default: 25)")
    verify.add_argument("--faults", action="store_true",
                        help="also run the sp fault-injection campaign")
    verify.add_argument("--replay", nargs="+", default=None, metavar="FILE",
                        help="re-verify committed reproducer JSON files "
                             "instead of fuzzing")
    verify.add_argument("--save-failing", default=None, metavar="DIR",
                        help="shrink failing scenarios and write minimal "
                             "reproducers into DIR")
    verify.set_defaults(fn=_cmd_verify)

    lint = sub.add_parser(
        "lint",
        help="static security analysis of plan/scenario JSON files")
    lint.add_argument("paths", nargs="+", metavar="FILE",
                      help="plan-spec or scenario JSON files")
    lint.add_argument("--format", default="text",
                      choices=["text", "json"],
                      help="report format (default: text)")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero on warnings too")
    lint.set_defaults(fn=_cmd_lint)
    return parser


def _cmd_shell(args: argparse.Namespace) -> int:
    from repro.shell import run_shell

    return run_shell()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
