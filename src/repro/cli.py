"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments [--quick]``
    Regenerate every figure of the paper's Section VII evaluation.
``explain <cql> [--roles R1,R2] [--optimize]``
    Parse a CQL SELECT, shield it for the given roles, optionally
    optimize, and print the (cost-annotated) plan.
``sp <insert-sp-statement>``
    Parse an ``INSERT SP`` statement and print the resulting
    punctuation in the paper's alphanumeric format.
``wire <file>``
    Validate a JSON-lines stream file: element counts, ordering,
    sp:tuple ratio.
``shell``
    Interactive DSMS console over a live session (see
    :mod:`repro.shell`).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

__all__ = ["main"]


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    run_all(0.2 if args.quick else 1.0)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.algebra.cost import CostModel
    from repro.algebra.explain import explain
    from repro.algebra.expressions import ShieldExpr
    from repro.algebra.optimizer import Optimizer
    from repro.algebra.rules import RewriteContext
    from repro.cql.translator import compile_statement
    from repro.core.punctuation import SecurityPunctuation

    expr = compile_statement(args.statement)
    if isinstance(expr, SecurityPunctuation):
        print("error: 'explain' takes a SELECT statement; "
              "use the 'sp' command for INSERT SP", file=sys.stderr)
        return 2
    if args.roles:
        roles = frozenset(r.strip() for r in args.roles.split(",")
                          if r.strip())
        expr = ShieldExpr(expr, roles)
    cost_model = CostModel()
    if args.optimize:
        from repro.algebra.expressions import ScanExpr, walk
        streams = frozenset(node.stream_id for node in walk(expr)
                            if isinstance(node, ScanExpr))
        optimizer = Optimizer(cost_model,
                              RewriteContext(policy_streams=streams))
        result = optimizer.optimize(expr)
        print(f"-- optimized: {result.initial_cost:,.0f} -> "
              f"{result.cost:,.0f} est. cost "
              f"({result.improvement:.0%} cheaper)\n")
        expr = result.plan
    print(explain(expr, cost_model))
    return 0


def _cmd_sp(args: argparse.Namespace) -> int:
    from repro.cql.translator import compile_statement
    from repro.core.punctuation import SecurityPunctuation

    sp = compile_statement(args.statement, provider=args.provider)
    if not isinstance(sp, SecurityPunctuation):
        print("error: 'sp' takes an INSERT SP statement",
              file=sys.stderr)
        return 2
    print(sp.to_text())
    return 0


def _cmd_wire(args: argparse.Namespace) -> int:
    from repro.stream.wire import load_stream

    n_tuples = n_sps = 0
    last_ts = float("-inf")
    ordered = True
    with open(args.path, encoding="utf-8") as fp:
        for element in load_stream(fp):
            if element.ts < last_ts:
                ordered = False
            last_ts = element.ts
            if hasattr(element, "srp"):
                n_sps += 1
            else:
                n_tuples += 1
    print(f"tuples:   {n_tuples}")
    print(f"sps:      {n_sps}")
    if n_sps:
        print(f"ratio:    1/{n_tuples / n_sps:.1f}")
    print(f"ordered:  {'yes' if ordered else 'NO'}")
    return 0 if ordered else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Security-punctuation framework (ICDE 2008 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="regenerate the Section VII figures")
    experiments.add_argument("--quick", action="store_true",
                             help="CI-sized workloads")
    experiments.set_defaults(fn=_cmd_experiments)

    explain_cmd = sub.add_parser("explain",
                                 help="show the plan of a CQL SELECT")
    explain_cmd.add_argument("statement")
    explain_cmd.add_argument("--roles", default="",
                             help="comma-separated query roles")
    explain_cmd.add_argument("--optimize", action="store_true")
    explain_cmd.set_defaults(fn=_cmd_explain)

    sp_cmd = sub.add_parser("sp", help="translate an INSERT SP statement")
    sp_cmd.add_argument("statement")
    sp_cmd.add_argument("--provider", default=None)
    sp_cmd.set_defaults(fn=_cmd_sp)

    wire = sub.add_parser("wire", help="validate a wire-format stream file")
    wire.add_argument("path")
    wire.set_defaults(fn=_cmd_wire)

    shell = sub.add_parser("shell",
                           help="interactive DSMS console (CQL + PUSH)")
    shell.set_defaults(fn=_cmd_shell)
    return parser


def _cmd_shell(args: argparse.Namespace) -> int:
    from repro.shell import run_shell

    return run_shell()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
