"""Ablation — the SPIndex skipping rule (Lemma 5.1) on vs off.

With multi-role policies sharing several roles across streams, an
index entry is reachable through every common role; without the
skipping rule each compatible segment is re-scanned once per common
role.  The workload here gives every policy 3 roles from a small pool,
maximizing overlap, so the rule's benefit is visible directly in the
duplicate-scan counters and the join time.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitmap import RoleUniverse
from repro.core.punctuation import SecurityPunctuation
from repro.experiments.fig9 import drive_join
from repro.operators.index_join import IndexSAJoin
from repro.stream.tuples import DataTuple

WINDOW = 300.0


def overlap_heavy_stream(sid, n_tuples, seed):
    """Punctuated stream whose policies always share roles."""
    rng = random.Random(seed)
    pool = ["r1", "r2", "r3", "r4"]
    elements = []
    ts = 0.0
    emitted = 0
    while emitted < n_tuples:
        ts += 1.0
        roles = sorted(rng.sample(pool, 3))  # any two policies overlap
        elements.append(SecurityPunctuation.grant(roles, ts))
        for _ in range(min(10, n_tuples - emitted)):
            ts += 1.0
            elements.append(DataTuple(
                sid, emitted, {"key": rng.randrange(40),
                               "payload": emitted}, ts))
            emitted += 1
    return elements


@pytest.fixture(scope="module")
def streams(join_tuples):
    return (overlap_heavy_stream("left", join_tuples, 31),
            overlap_heavy_stream("right", join_tuples, 37))


@pytest.mark.parametrize("skipping", [True, False],
                         ids=["skipping-on", "skipping-off"])
def test_ablation_skipping(benchmark, streams, skipping):
    left, right = streams

    def once():
        join = IndexSAJoin("key", "key", WINDOW, universe=RoleUniverse(),
                           skipping=skipping, left_sid="left",
                           right_sid="right")
        timings = drive_join(join, left, right)
        timings["entries_scanned"] = (join.indexes[0].entries_scanned
                                      + join.indexes[1].entries_scanned)
        timings["entries_skipped"] = (join.indexes[0].entries_skipped
                                      + join.indexes[1].entries_skipped)
        return timings

    timings = benchmark(once)
    benchmark.extra_info["skipping"] = skipping
    benchmark.extra_info["join_ms"] = round(timings["join_ms"], 4)
    benchmark.extra_info["entries_scanned"] = timings["entries_scanned"]
    benchmark.extra_info["entries_skipped"] = timings["entries_skipped"]
    benchmark.extra_info["results"] = timings["results"]
