"""Ablation — incremental (delta) sps vs full policy restatement.

With a large standing policy that changes by one role at a time (the
future-work scenario: admit the ER, drop the ER), a provider can either
restate the whole |R|-role policy per change or send a one-role delta.
This bench compares Security Shield processing cost and transmitted sp
payload bytes for the two encodings at several policy sizes.

Expected trade-off: deltas shrink the transmitted sp payload from
O(|R|) to O(1) per change (see ``sp_payload_bytes`` in extra_info),
while the *server* pays a policy-merge per delta batch — so absolute
restatement can process faster when bandwidth is free.  Exactly the
kind of trade the paper's future-work item would need to weigh.
"""

from __future__ import annotations

import pytest

from repro.core.punctuation import SecurityPunctuation
from repro.operators.shield import SecurityShield
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.stream.wire import encode_element
from repro.workloads.synthetic import QUERY_ROLE, role_names

POLICY_SIZES = (10, 50, 200)
TUPLES_PER_CHANGE = 10
N_CHANGES = 120


def _streams(policy_size: int):
    """(absolute, delta) encodings of the same policy evolution.

    The standing policy is ``policy_size`` roles incl. the query role;
    every ``TUPLES_PER_CHANGE`` tuples one extra role (``flicker``)
    toggles in and out.
    """
    base = sorted(set(role_names(policy_size - 1) + [QUERY_ROLE]))
    absolute: list[StreamElement] = []
    delta: list[StreamElement] = []
    ts = 0.0
    tid = 0
    delta.append(SecurityPunctuation.grant(base, 0.5))  # initial policy
    flicker_on = False
    for change in range(N_CHANGES):
        ts += 1.0
        flicker_on = not flicker_on
        roles = base + ["flicker"] if flicker_on else base
        absolute.append(SecurityPunctuation.grant(sorted(roles), ts))
        if flicker_on:
            delta.append(SecurityPunctuation.add_roles(["flicker"], ts))
        else:
            delta.append(SecurityPunctuation.retract_roles(["flicker"], ts))
        for _ in range(TUPLES_PER_CHANGE):
            ts += 1.0
            item = DataTuple("s", tid, {"v": tid}, ts)
            absolute.append(item)
            delta.append(item)
            tid += 1
    return absolute, delta


def _drive(elements) -> int:
    shield = SecurityShield([QUERY_ROLE])
    out = 0
    for element in elements:
        out += sum(1 for item in shield.process(element)
                   if isinstance(item, DataTuple))
    return out


@pytest.mark.parametrize("policy_size", POLICY_SIZES)
@pytest.mark.parametrize("encoding", ["absolute", "delta"])
def test_ablation_incremental(benchmark, encoding, policy_size):
    absolute, delta = _streams(policy_size)
    elements = absolute if encoding == "absolute" else delta

    out = benchmark(lambda: _drive(elements))
    # Both encodings must deliver every tuple (query role always in).
    assert out == N_CHANGES * TUPLES_PER_CHANGE
    sp_bytes = sum(len(encode_element(e)) for e in elements
                   if isinstance(e, SecurityPunctuation))
    benchmark.extra_info["encoding"] = encoding
    benchmark.extra_info["policy_size"] = policy_size
    benchmark.extra_info["sp_payload_bytes"] = sp_bytes
