"""Figure 9 — nested-loop vs index SAJoin across sp selectivities.

Total per-100-tuple cost, decomposed into join time, sp maintenance
and tuple maintenance, for σsp ∈ {0, 0.1, 0.5, 1}.  The paper's shape:
the index SAJoin wins everywhere; its join-time advantage is largest
when few policies are compatible (σsp = 0) and smallest at σsp = 1;
sp-maintenance cost stays low throughout.
"""

from __future__ import annotations

import pytest

from repro.core.bitmap import RoleUniverse
from repro.experiments.fig9 import PAPER_SELECTIVITIES, drive_join
from repro.operators.index_join import IndexSAJoin
from repro.operators.join import NestedLoopSAJoin

WINDOW = 300.0

VARIANTS = {
    "nested_loop": lambda: NestedLoopSAJoin(
        "key", "key", WINDOW, left_sid="left", right_sid="right"),
    "index": lambda: IndexSAJoin(
        "key", "key", WINDOW, universe=RoleUniverse(),
        left_sid="left", right_sid="right"),
}


@pytest.fixture(scope="module")
def streams(join_tuples):
    from repro.workloads.synthetic import join_streams
    out = {}
    for sigma in PAPER_SELECTIVITIES:
        left, right, _, _ = join_streams(
            join_tuples, tuples_per_sp=10, compatibility=sigma,
            match_fraction=0.15, seed=23)
        out[sigma] = (left, right)
    return out


@pytest.mark.parametrize("sigma", PAPER_SELECTIVITIES)
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_fig9(benchmark, streams, variant, sigma):
    left, right = streams[sigma]
    make = VARIANTS[variant]
    timings = benchmark(lambda: drive_join(make(), left, right))
    benchmark.extra_info["sigma_sp"] = sigma
    for key in ("total_ms", "join_ms", "sp_maintenance_ms",
                "tuple_maintenance_ms"):
        benchmark.extra_info[key] = round(timings[key], 4)
    benchmark.extra_info["results"] = timings["results"]
