"""Shared workload fixtures for the benchmark suite.

Workload sizes here are chosen so the full ``pytest benchmarks/
--benchmark-only`` run finishes in a few minutes on a laptop while
still showing the paper's effects clearly.  Scale them up with the
``REPRO_BENCH_SCALE`` environment variable (e.g. ``=5``) for
publication-quality runs.
"""

from __future__ import annotations

import os

import pytest

#: Global workload scale factor.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(n: int) -> int:
    return max(1, int(n * SCALE))


@pytest.fixture(scope="session")
def bench_tuples() -> int:
    """Tuples per benchmark workload."""
    return scaled(3000)


@pytest.fixture(scope="session")
def join_tuples() -> int:
    """Tuples per join-stream (quadratic cost: keep smaller)."""
    return scaled(800)
