"""Ablation — SS placement: pre-, intermediate- and post-filtering.

Section IV.A sketches three placements of access-control filtering
around a query plan.  The query here is select-heavy over a stream
with low security selectivity (few tuples accessible to the query's
role), the regime where early filtering pays: pre/intermediate
placement discards unauthorized tuples before the selection evaluates
them, while post-filtering runs the whole query first.

A second parameter point flips the regime (selective query, permissive
policies), where post-filtering's plan-sharing-friendly layout costs
little — the trade-off the optimizer's cost model navigates.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig7 import region_condition
from repro.operators.accessfilter import AccessFilter
from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.shield import SecurityShield
from repro.stream.element import StreamElement
from repro.workloads.synthetic import QUERY_ROLE, punctuated_stream


def drive(elements, operators) -> int:
    out = 0
    for element in elements:
        batch = [element]
        for operator in operators:
            nxt: list[StreamElement] = []
            for item in batch:
                nxt.extend(operator.process(item))
            batch = nxt
            if not batch:
                break
        out += len(batch)
    return out


def make_layout(name):
    select = Select(region_condition())
    project = Project(("object_id", "x", "y"))
    if name == "pre":
        return (AccessFilter([QUERY_ROLE], strip_sps=True), select, project)
    if name == "intermediate":
        return (select, SecurityShield([QUERY_ROLE]), project)
    return (select, project, AccessFilter([QUERY_ROLE], strip_sps=True))


REGIMES = {
    # Tight policies: only 10% of segments accessible → filter early.
    "tight-policies": dict(accessible_fraction=0.1),
    # Permissive policies: filtering late costs little.
    "permissive-policies": dict(accessible_fraction=0.9),
}


@pytest.fixture(scope="module")
def streams(bench_tuples):
    return {
        regime: list(punctuated_stream(
            bench_tuples, tuples_per_sp=10, policy_size=3, seed=47,
            **params))
        for regime, params in REGIMES.items()
    }


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize("placement", ["pre", "intermediate", "post"])
def test_ablation_ss_placement(benchmark, streams, placement, regime):
    elements = streams[regime]
    result = benchmark(lambda: drive(elements, make_layout(placement)))
    benchmark.extra_info["placement"] = placement
    benchmark.extra_info["regime"] = regime
    benchmark.extra_info["elements_out"] = result
