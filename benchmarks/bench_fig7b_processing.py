"""Figure 7b — processing cost per tuple of the three mechanisms.

Same workload as Figure 7a; the benchmarked quantity is the per-tuple
processing cost (the paper's y-axis), exposed via ``extra_info`` while
pytest-benchmark reports the end-to-end run time distribution.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig7 import (PAPER_RATIOS, run_sp_mechanism,
                                    run_store_and_probe,
                                    run_tuple_embedded)
from repro.workloads.synthetic import QUERY_ROLE, punctuated_stream

MECHANISMS = {
    "store_and_probe": run_store_and_probe,
    "tuple_embedded": run_tuple_embedded,
    "security_punctuations": run_sp_mechanism,
}


@pytest.fixture(scope="module")
def streams(bench_tuples):
    return {
        ratio: list(punctuated_stream(
            bench_tuples, tuples_per_sp=ratio, policy_size=3,
            accessible_fraction=0.6, seed=7))
        for ratio in PAPER_RATIOS
    }


@pytest.mark.parametrize("ratio", PAPER_RATIOS)
@pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
def test_fig7b(benchmark, streams, mechanism, ratio):
    elements = streams[ratio]
    run = MECHANISMS[mechanism]
    result = benchmark(lambda: run(elements, [QUERY_ROLE]))
    benchmark.extra_info["ratio"] = f"1/{ratio}"
    benchmark.extra_info["per_tuple_ms"] = result.per_tuple_ms
