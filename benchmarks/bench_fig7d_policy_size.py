"""Figure 7d — processing cost per 100 tuples vs policy size |R|.

The paper's shape: as policies grow, the tuple-embedded approach pays
the most (every tuple carries and checks its own |R|-role copy), while
store-and-probe and the sp model grow much more slowly.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig7 import (PAPER_POLICY_SIZES,
                                    _large_policy_stream,
                                    run_sp_mechanism, run_store_and_probe,
                                    run_tuple_embedded)
from repro.workloads.synthetic import QUERY_ROLE

MECHANISMS = {
    "store_and_probe": run_store_and_probe,
    "tuple_embedded": run_tuple_embedded,
    "security_punctuations": run_sp_mechanism,
}


@pytest.fixture(scope="module")
def streams(bench_tuples):
    n = max(bench_tuples // 2, 500)
    return {
        size: _large_policy_stream(n, size, tuples_per_sp=10, seed=11)
        for size in PAPER_POLICY_SIZES
    }


@pytest.mark.parametrize("policy_size", PAPER_POLICY_SIZES)
@pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
def test_fig7d(benchmark, streams, mechanism, policy_size):
    elements = streams[policy_size]
    run = MECHANISMS[mechanism]
    result = benchmark(lambda: run(elements, [QUERY_ROLE]))
    benchmark.extra_info["policy_size"] = policy_size
    benchmark.extra_info["per_100_tuples_ms"] = result.per_100_tuples_ms
