"""Ablation — probe-and-filter vs filter-and-probe nested-loop SAJoin.

Section V.B.1 describes both probe orders.  PF checks the join value
first and the policies of matching pairs second; FP filters the
opposite window down to policy-compatible segments first.  FP should
win when policy compatibility is rare (σsp small) and lose its edge as
σsp → 1, where the policy filter rejects nothing.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig9 import drive_join
from repro.operators.join import NestedLoopSAJoin
from repro.workloads.synthetic import join_streams

WINDOW = 300.0
SIGMAS = (0.0, 0.5, 1.0)


@pytest.fixture(scope="module")
def streams(join_tuples):
    out = {}
    for sigma in SIGMAS:
        left, right, _, _ = join_streams(
            join_tuples, tuples_per_sp=10, compatibility=sigma,
            match_fraction=0.15, seed=29)
        out[sigma] = (left, right)
    return out


@pytest.mark.parametrize("sigma", SIGMAS)
@pytest.mark.parametrize("method", ["PF", "FP"])
def test_ablation_pf_fp(benchmark, streams, method, sigma):
    left, right = streams[sigma]

    def once():
        join = NestedLoopSAJoin("key", "key", WINDOW, method=method,
                                left_sid="left", right_sid="right")
        return drive_join(join, left, right)

    timings = benchmark(once)
    benchmark.extra_info["method"] = method
    benchmark.extra_info["sigma_sp"] = sigma
    benchmark.extra_info["join_ms"] = round(timings["join_ms"], 4)
    benchmark.extra_info["results"] = timings["results"]
