"""Ablation — bitmap vs plain-set policy encoding.

The paper notes policies "can also be encoded in a bitmap format for
compactness".  This bench compares the two
:class:`~repro.core.bitmap.AbstractRoleSet` encodings on the hot
operation of the whole framework — policy-compatibility checks — and
on memory per policy, at several policy sizes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitmap import RoleBitmap, RoleSet, RoleUniverse
from repro.metrics.measurement import deep_sizeof
from repro.workloads.synthetic import role_names

POLICY_SIZES = (2, 10, 50)
N_POLICIES = 400
N_CHECKS = 4000


def _policies(encoding, policy_size, seed):
    rng = random.Random(seed)
    pool = role_names(max(100, policy_size * 2))
    universe = RoleUniverse(pool)
    out = []
    for _ in range(N_POLICIES):
        roles = rng.sample(pool, policy_size)
        if encoding == "bitmap":
            out.append(RoleBitmap(universe, roles))
        else:
            out.append(RoleSet(roles))
    return out


@pytest.mark.parametrize("policy_size", POLICY_SIZES)
@pytest.mark.parametrize("encoding", ["set", "bitmap"])
def test_ablation_bitmap_intersection(benchmark, encoding, policy_size):
    policies = _policies(encoding, policy_size, seed=41)
    rng = random.Random(43)
    pairs = [(rng.randrange(N_POLICIES), rng.randrange(N_POLICIES))
             for _ in range(N_CHECKS)]

    def once():
        hits = 0
        for a, b in pairs:
            if policies[a].intersects(policies[b]):
                hits += 1
        return hits

    hits = benchmark(once)
    benchmark.extra_info["encoding"] = encoding
    benchmark.extra_info["policy_size"] = policy_size
    benchmark.extra_info["compatible_pairs"] = hits
    benchmark.extra_info["bytes_per_policy"] = (
        deep_sizeof(policies) // N_POLICIES)
