"""Figure 8a — Security Shield cost vs the cheapest query operators.

Per-operator per-tuple cost (project, select, SS) inside one shared
pipeline, across sp:tuple ratios.  The paper's shape: SS cost is
highest at 1/1 (one sp evaluated per tuple) and drops sharply as more
tuples share an sp, approaching select/project cost.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig8 import PAPER_SS_RATIOS, run_pipeline
from repro.operators.shield import SecurityShield
from repro.workloads.synthetic import QUERY_ROLE, punctuated_stream


@pytest.fixture(scope="module")
def streams(bench_tuples):
    return {
        ratio: list(punctuated_stream(
            bench_tuples, tuples_per_sp=ratio, policy_size=3,
            accessible_fraction=0.6, seed=13))
        for ratio in PAPER_SS_RATIOS
    }


@pytest.mark.parametrize("ratio", PAPER_SS_RATIOS)
def test_fig8a(benchmark, streams, ratio):
    elements = streams[ratio]

    def once():
        return run_pipeline(elements, SecurityShield([QUERY_ROLE]))

    timings = benchmark(once)
    benchmark.extra_info["ratio"] = f"1/{ratio}"
    for key in ("ss_ms", "select_ms", "project_ms"):
        benchmark.extra_info[key] = round(timings[key], 6)
