"""Figure 8b — Security Shield cost vs role count in the SS state.

The SS state holds the roles of the query specifiers registered for
the stream (R ∈ {1, 10, 50, 100, 500}).  The paper's baseline SS scans
its state per sp, so cost grows with R but stays a minor share of the
query; the predicate-index remedy (``indexed`` parameter) flattens the
curve, benchmarked alongside.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig8 import PAPER_ROLE_COUNTS, run_pipeline
from repro.operators.shield import SecurityShield
from repro.workloads.synthetic import (QUERY_ROLE, punctuated_stream,
                                       role_names)


@pytest.fixture(scope="module")
def stream(bench_tuples):
    return list(punctuated_stream(
        bench_tuples, tuples_per_sp=10, policy_size=3,
        role_pool=600, accessible_fraction=0.6, seed=17))


@pytest.mark.parametrize("role_count", PAPER_ROLE_COUNTS)
@pytest.mark.parametrize("indexed", [False, True],
                         ids=["scan-state", "predicate-index"])
def test_fig8b(benchmark, stream, role_count, indexed):
    state_roles = role_names(role_count, prefix="qr") + [QUERY_ROLE]

    def once():
        return run_pipeline(stream,
                            SecurityShield(state_roles, indexed=indexed))

    timings = benchmark(once)
    benchmark.extra_info["roles"] = role_count
    benchmark.extra_info["indexed"] = indexed
    benchmark.extra_info["ss_ms"] = round(timings["ss_ms"], 6)
    benchmark.extra_info["ss_fraction"] = round(timings["ss_fraction"], 4)
