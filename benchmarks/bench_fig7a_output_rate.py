"""Figure 7a — output rate of the three enforcement mechanisms.

Regenerates the paper's series: output rate (tuples per ms of
processing) for store-and-probe, tuple-embedded policies and security
punctuations across sp:tuple ratios 1/1 ... 1/100.

Run::

    pytest benchmarks/bench_fig7a_output_rate.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.fig7 import (PAPER_RATIOS, run_sp_mechanism,
                                    run_store_and_probe,
                                    run_tuple_embedded)
from repro.workloads.synthetic import QUERY_ROLE, punctuated_stream

MECHANISMS = {
    "store_and_probe": run_store_and_probe,
    "tuple_embedded": run_tuple_embedded,
    "security_punctuations": run_sp_mechanism,
}


@pytest.fixture(scope="module")
def streams(bench_tuples):
    return {
        ratio: list(punctuated_stream(
            bench_tuples, tuples_per_sp=ratio, policy_size=3,
            accessible_fraction=0.6, seed=7))
        for ratio in PAPER_RATIOS
    }


@pytest.mark.parametrize("ratio", PAPER_RATIOS)
@pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
def test_fig7a(benchmark, streams, mechanism, ratio):
    elements = streams[ratio]
    run = MECHANISMS[mechanism]

    def once():
        return run(elements, [QUERY_ROLE])

    result = benchmark(once)
    benchmark.extra_info["ratio"] = f"1/{ratio}"
    benchmark.extra_info["mechanism"] = result.mechanism
    benchmark.extra_info["output_rate_tuples_per_ms"] = result.output_rate
    benchmark.extra_info["tuples_out"] = result.tuples_out
