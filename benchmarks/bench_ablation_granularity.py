"""Extension — Security Shield cost by policy granularity.

Stream-, tuple- and attribute-level policies (Section III.A) carrying
*identical* access decisions, so the measured differences are pure
enforcement overhead: one shared decision per segment vs per-tuple
resolution vs per-tuple-per-attribute intersection.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig8 import run_pipeline
from repro.experiments.granularity import GRANULARITIES, granularity_stream
from repro.operators.shield import SecurityShield
from repro.workloads.synthetic import QUERY_ROLE


@pytest.fixture(scope="module")
def streams(bench_tuples):
    return {
        granularity: granularity_stream(granularity, bench_tuples,
                                        tuples_per_sp=10, seed=53)
        for granularity in GRANULARITIES
    }


@pytest.mark.parametrize("granularity", GRANULARITIES)
def test_ablation_granularity(benchmark, streams, granularity):
    elements = streams[granularity]

    def once():
        return run_pipeline(elements, SecurityShield([QUERY_ROLE]))

    timings = benchmark(once)
    benchmark.extra_info["granularity"] = granularity
    benchmark.extra_info["ss_ms"] = round(timings["ss_ms"], 6)
