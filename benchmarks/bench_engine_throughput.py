"""Engine throughput: end-to-end DSMS execution at growing fan-out.

Measures whole-engine element throughput (sources → analyzer → shared
plan → delivery) as the number of concurrently registered queries
grows, comparing the three optimization modes (as-registered,
per-query optimized, workload-optimized) and the two execution modes
(element-wise vs segment-batched).

Run standalone to (re)generate ``BENCH_throughput.json`` at the repo
root — the batched-vs-unbatched comparison quoted in
``docs/PERFORMANCE.md``::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import ScanExpr
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.operators.conditions import Comparison
from repro.workloads.synthetic import (SYNTH_SCHEMA, punctuated_stream,
                                       role_names)

QUERY_COUNTS = (1, 4, 16)
MODES = {"plain": OptimizeLevel.NONE, "optimized": OptimizeLevel.PER_QUERY,
         "workload": OptimizeLevel.WORKLOAD}


def build_dsms(n_queries: int, elements) -> DSMS:
    dsms = DSMS()
    dsms.register_stream(SYNTH_SCHEMA, elements)
    base = ScanExpr("synthetic").select(Comparison("x", ">", 100.0))
    for index, role in enumerate(role_names(n_queries, prefix="qr")):
        dsms.register_query(f"q{index}", base, roles={role, "q_role"})
    return dsms


@pytest.fixture(scope="module")
def elements(bench_tuples):
    return list(punctuated_stream(
        bench_tuples, tuples_per_sp=10, policy_size=3,
        accessible_fraction=0.6, seed=61))


@pytest.mark.parametrize("n_queries", QUERY_COUNTS)
@pytest.mark.parametrize("batching", [False, True],
                         ids=["unbatched", "batched"])
@pytest.mark.parametrize("mode", sorted(MODES))
def test_engine_throughput(benchmark, elements, mode, batching, n_queries):
    optimize = MODES[mode]
    dsms = build_dsms(n_queries, elements)

    def once():
        return dsms.run(optimize=optimize, batching=batching)

    results = benchmark(once)
    total_out = sum(len(r.tuples) for r in results.values())
    benchmark.extra_info["n_queries"] = n_queries
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["batching"] = batching
    benchmark.extra_info["tuples_delivered"] = total_out
    benchmark.extra_info["elements_in"] = (
        dsms.last_report.elements_in if dsms.last_report else 0)


# -- standalone batched-vs-unbatched measurement -----------------------------

def _measure(n_queries: int, tuples_per_sp: int, n_tuples: int,
             batching: bool, repeats: int = 3) -> dict:
    """Best-of-``repeats`` element throughput for one configuration."""
    import time

    elements = list(punctuated_stream(
        n_tuples, tuples_per_sp=tuples_per_sp, policy_size=3,
        accessible_fraction=0.6, seed=61))
    dsms = build_dsms(n_queries, elements)
    best = float("inf")
    elements_in = 0
    for _ in range(repeats):
        start = time.perf_counter()
        dsms.run(batching=batching)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        elements_in = dsms.last_report.elements_in
    return {
        "elements_in": elements_in,
        "best_seconds": round(best, 6),
        "elements_per_second": round(elements_in / best, 1),
    }


def main(out_path: str = "BENCH_throughput.json",
         n_tuples: int = 20_000) -> dict:
    import json

    report: dict = {
        "benchmark": "segment_batched_vs_element_wise_throughput",
        "workload": {
            "n_tuples": n_tuples,
            "policy_size": 3,
            "accessible_fraction": 0.6,
            "seed": 61,
            "query": "select(x > 100) + per-query security shield",
        },
        "configs": [],
    }
    for tuples_per_sp in (1, 10, 100):
        for n_queries in (1, 4):
            row = {"tuples_per_sp": tuples_per_sp, "n_queries": n_queries}
            for batching in (False, True):
                key = "batched" if batching else "unbatched"
                row[key] = _measure(n_queries, tuples_per_sp, n_tuples,
                                    batching)
            row["speedup"] = round(
                row["batched"]["elements_per_second"]
                / row["unbatched"]["elements_per_second"], 2)
            report["configs"].append(row)
            print(f"tuples_per_sp={tuples_per_sp:>3} n_queries={n_queries}: "
                  f"unbatched={row['unbatched']['elements_per_second']:>9,.0f}"
                  f" batched={row['batched']['elements_per_second']:>9,.0f}"
                  f" elem/s  speedup={row['speedup']:.2f}x")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    main()
