"""Engine throughput: end-to-end DSMS execution at growing fan-out.

Measures whole-engine element throughput (sources → analyzer → shared
plan → delivery) as the number of concurrently registered queries
grows, comparing the three optimization modes (as-registered,
per-query optimized, workload-optimized), the two execution modes
(element-wise vs segment-batched) and the observability tiers
(off / metrics registry on / full monitor with audit + tracing +
dashboard rendering).

Run standalone to (re)generate ``BENCH_throughput.json`` at the repo
root — the batched-vs-unbatched and observability-overhead numbers
quoted in ``docs/PERFORMANCE.md``::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import ScanExpr
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.observability import Observability
from repro.operators.conditions import Comparison
from repro.workloads.synthetic import (SYNTH_SCHEMA, punctuated_stream,
                                       role_names)

QUERY_COUNTS = (1, 4, 16)
MODES = {"plain": OptimizeLevel.NONE, "optimized": OptimizeLevel.PER_QUERY,
         "workload": OptimizeLevel.WORKLOAD}

#: The observability axis: nothing, metrics registry only, everything
#: (audit log + tracing + metrics + live dashboard frames).
OBSERVABILITY_TIERS = ("off", "registry", "monitor")


def _make_observability(tier: str) -> Observability:
    if tier == "off":
        return Observability.disabled()
    if tier == "registry":
        return Observability.with_metrics()
    return Observability.in_memory()


def build_dsms(n_queries: int, elements, *,
               observability: Observability | None = None) -> DSMS:
    dsms = (DSMS() if observability is None
            else DSMS(observability=observability))
    dsms.register_stream(SYNTH_SCHEMA, elements)
    base = ScanExpr("synthetic").select(Comparison("x", ">", 100.0))
    for index, role in enumerate(role_names(n_queries, prefix="qr")):
        dsms.register_query(f"q{index}", base, roles={role, "q_role"})
    return dsms


@pytest.fixture(scope="module")
def elements(bench_tuples):
    return list(punctuated_stream(
        bench_tuples, tuples_per_sp=10, policy_size=3,
        accessible_fraction=0.6, seed=61))


@pytest.mark.parametrize("n_queries", QUERY_COUNTS)
@pytest.mark.parametrize("batching", [False, True],
                         ids=["unbatched", "batched"])
@pytest.mark.parametrize("mode", sorted(MODES))
def test_engine_throughput(benchmark, elements, mode, batching, n_queries):
    optimize = MODES[mode]
    dsms = build_dsms(n_queries, elements)

    def once():
        return dsms.run(optimize=optimize, batching=batching)

    results = benchmark(once)
    total_out = sum(len(r.tuples) for r in results.values())
    benchmark.extra_info["n_queries"] = n_queries
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["batching"] = batching
    benchmark.extra_info["tuples_delivered"] = total_out
    benchmark.extra_info["elements_in"] = (
        dsms.last_report.elements_in if dsms.last_report else 0)


@pytest.mark.parametrize("tier", OBSERVABILITY_TIERS)
def test_observability_overhead(benchmark, elements, tier):
    """Throughput cost of each observability tier (batched, 4 queries)."""
    dsms = build_dsms(4, elements, observability=_make_observability(tier))

    def once():
        results = dsms.run(batching=True)
        if tier == "monitor":
            _render_monitor_frame(dsms)
        return results

    results = benchmark(once)
    benchmark.extra_info["tier"] = tier
    benchmark.extra_info["tuples_delivered"] = sum(
        len(r.tuples) for r in results.values())


def _render_monitor_frame(dsms: DSMS) -> None:
    """One dashboard frame into a throwaway buffer (monitor tier)."""
    from repro.observability.health import HealthMonitor
    from repro.observability.monitor import MonitorView, run_monitor

    instruments = dsms.observability.instruments
    assert instruments is not None
    report = dsms.last_report
    view = MonitorView(
        instruments,
        stages=(lambda: report.stages) if report else None,
        health=HealthMonitor(instruments,
                             tracer=dsms.observability.tracer))
    frames: list[str] = []
    run_monitor(view, frames=1, interval=0, clear=False,
                write=frames.append)


# -- standalone batched-vs-unbatched measurement -----------------------------

def _measure(n_queries: int, tuples_per_sp: int, n_tuples: int,
             batching: bool, repeats: int = 3, *,
             tier: str = "off") -> dict:
    """Best-of-``repeats`` element throughput for one configuration."""
    import time

    elements = list(punctuated_stream(
        n_tuples, tuples_per_sp=tuples_per_sp, policy_size=3,
        accessible_fraction=0.6, seed=61))
    dsms = build_dsms(n_queries, elements,
                      observability=_make_observability(tier))
    best = float("inf")
    elements_in = 0
    for _ in range(repeats):
        start = time.perf_counter()
        dsms.run(batching=batching)
        if tier == "monitor":
            _render_monitor_frame(dsms)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        elements_in = dsms.last_report.elements_in
    return {
        "elements_in": elements_in,
        "best_seconds": round(best, 6),
        "elements_per_second": round(elements_in / best, 1),
    }


def main(out_path: str = "BENCH_throughput.json",
         n_tuples: int = 20_000) -> dict:
    import json

    report: dict = {
        "benchmark": "segment_batched_vs_element_wise_throughput",
        "workload": {
            "n_tuples": n_tuples,
            "policy_size": 3,
            "accessible_fraction": 0.6,
            "seed": 61,
            "query": "select(x > 100) + per-query security shield",
        },
        "configs": [],
    }
    for tuples_per_sp in (1, 10, 100):
        for n_queries in (1, 4):
            row = {"tuples_per_sp": tuples_per_sp, "n_queries": n_queries}
            for batching in (False, True):
                key = "batched" if batching else "unbatched"
                row[key] = _measure(n_queries, tuples_per_sp, n_tuples,
                                    batching)
            row["speedup"] = round(
                row["batched"]["elements_per_second"]
                / row["unbatched"]["elements_per_second"], 2)
            report["configs"].append(row)
            print(f"tuples_per_sp={tuples_per_sp:>3} n_queries={n_queries}: "
                  f"unbatched={row['unbatched']['elements_per_second']:>9,.0f}"
                  f" batched={row['batched']['elements_per_second']:>9,.0f}"
                  f" elem/s  speedup={row['speedup']:.2f}x")

    # -- observability overhead axis (batched, 4 queries, 1 sp / 10 tuples)
    observability: dict = {
        "workload": {"tuples_per_sp": 10, "n_queries": 4,
                     "batching": True},
        "tiers": {},
    }
    for tier in OBSERVABILITY_TIERS:
        observability["tiers"][tier] = _measure(
            4, 10, n_tuples, batching=True, tier=tier)
    base_eps = observability["tiers"]["off"]["elements_per_second"]
    for tier in OBSERVABILITY_TIERS:
        eps = observability["tiers"][tier]["elements_per_second"]
        overhead = (base_eps - eps) / base_eps if base_eps else 0.0
        observability["tiers"][tier]["overhead_vs_off"] = round(
            overhead, 4)
        print(f"observability={tier:>8}: {eps:>9,.0f} elem/s  "
              f"overhead={overhead:+.1%}")
    report["observability"] = observability
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    main()
