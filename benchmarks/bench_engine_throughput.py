"""Engine throughput: end-to-end DSMS execution at growing fan-out.

Measures whole-engine element throughput (sources → analyzer → shared
plan → delivery) as the number of concurrently registered queries
grows, comparing the three optimization modes (as-registered,
per-query optimized, workload-optimized), the three execution modes
(element-wise vs segment-batched vs fused-columnar) and the
observability tiers (off / metrics registry on / full monitor with
audit + tracing + dashboard rendering).

Run standalone to (re)generate ``BENCH_throughput.json`` at the repo
root — the execution-mode and observability-overhead numbers quoted in
``docs/PERFORMANCE.md``::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

or as the CI perf regression gate (reduced workload, exit 1 if the
columnar tier is slower than plain batched at ``tuples_per_sp=100``)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --perf-smoke

or as the observability-overhead gate (exit 1 if default-sampled
causal tracing costs more than 20% of untraced throughput)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --obs-smoke

or as the shard-scaling gate (exit 1 if 4 worker processes project
less than 2.5x one shard's critical-path throughput)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --shard-smoke

or as the UDF effect-analysis gate (strict-lints the example plan
specs, asserts the proven-pure UDF arm compiles fully vectorized and
the opaque arm does not, and requires the pure arm's fused columnar
throughput to hold ≥0.95x plain batched)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --udf-smoke
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import ScanExpr
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.observability import Observability
from repro.operators.conditions import Comparison, FuncCondition
from repro.workloads.synthetic import (SYNTH_SCHEMA, punctuated_stream,
                                       role_names)

QUERY_COUNTS = (1, 4, 16)
MODES = {"plain": OptimizeLevel.NONE, "optimized": OptimizeLevel.PER_QUERY,
         "workload": OptimizeLevel.WORKLOAD}

#: The observability axis: nothing, sampled causal tracing only,
#: metrics registry only, everything (audit log + tracing + metrics +
#: live dashboard frames).
OBSERVABILITY_TIERS = ("off", "tracing", "registry", "monitor")


def _make_observability(tier: str) -> Observability:
    if tier == "off":
        return Observability.disabled()
    if tier == "tracing":
        # Default head-sampling rate; drops/denials are kept anyway.
        return Observability.with_tracing()
    if tier == "registry":
        return Observability.with_metrics()
    return Observability.in_memory()


def build_dsms(n_queries: int, elements, *,
               observability: Observability | None = None,
               threshold: float = 100.0) -> DSMS:
    dsms = (DSMS() if observability is None
            else DSMS(observability=observability))
    dsms.register_stream(SYNTH_SCHEMA, elements)
    base = ScanExpr("synthetic").select(Comparison("x", ">", threshold))
    for index, role in enumerate(role_names(n_queries, prefix="qr")):
        dsms.register_query(f"q{index}", base, roles={role, "q_role"})
    return dsms


# -- UDF axis: provable vs opaque arms with identical semantics --------------

def _udf_pure(t):
    """The analyzer's provable fragment: reads {x}, pure, deterministic."""
    return t.get("x", 0.0) > 100.0


#: Dispatch table the opaque arm routes through.  Same predicate, but a
#: mutable-global indirection the bytecode scan cannot resolve, so its
#: determinism proof stays UNKNOWN and the compiler keeps the row stage
#: (fail-closed — exactly what this axis measures the cost of).
_UDF_DISPATCH = {"x": _udf_pure}


def _udf_opaque(t):
    """Same predicate as :func:`_udf_pure` behind unprovable dispatch."""
    return _UDF_DISPATCH["x"](t)


def build_udf_dsms(n_queries: int, elements, fn, label: str) -> DSMS:
    """A DSMS whose query predicate is a declared-read-set UDF."""
    dsms = DSMS()
    dsms.register_stream(SYNTH_SCHEMA, elements)
    base = ScanExpr("synthetic").select(
        FuncCondition(fn, ("x",), label=label))
    for index, role in enumerate(role_names(n_queries, prefix="qr")):
        dsms.register_query(f"q{index}", base, roles={role, "q_role"})
    return dsms


@pytest.fixture(scope="module")
def elements(bench_tuples):
    return list(punctuated_stream(
        bench_tuples, tuples_per_sp=10, policy_size=3,
        accessible_fraction=0.6, seed=61))


#: The execution-mode axis: (batching, columnar) per id.
EXECUTION_MODES = {"unbatched": (False, False), "batched": (True, False),
                   "columnar": (True, True)}


@pytest.mark.parametrize("n_queries", QUERY_COUNTS)
@pytest.mark.parametrize("execution", sorted(EXECUTION_MODES))
@pytest.mark.parametrize("mode", sorted(MODES))
def test_engine_throughput(benchmark, elements, mode, execution, n_queries):
    optimize = MODES[mode]
    batching, columnar = EXECUTION_MODES[execution]
    dsms = build_dsms(n_queries, elements)

    def once():
        return dsms.run(optimize=optimize, batching=batching,
                        columnar=columnar)

    results = benchmark(once)
    total_out = sum(len(r.tuples) for r in results.values())
    benchmark.extra_info["n_queries"] = n_queries
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["execution"] = execution
    benchmark.extra_info["tuples_delivered"] = total_out
    benchmark.extra_info["elements_in"] = (
        dsms.last_report.elements_in if dsms.last_report else 0)


@pytest.mark.parametrize("tier", OBSERVABILITY_TIERS)
def test_observability_overhead(benchmark, elements, tier):
    """Throughput cost of each observability tier (batched, 4 queries)."""
    dsms = build_dsms(4, elements, observability=_make_observability(tier))

    def once():
        results = dsms.run(batching=True)
        if tier == "monitor":
            _render_monitor_frame(dsms)
        return results

    results = benchmark(once)
    benchmark.extra_info["tier"] = tier
    benchmark.extra_info["tuples_delivered"] = sum(
        len(r.tuples) for r in results.values())


def _render_monitor_frame(dsms: DSMS) -> None:
    """One dashboard frame into a throwaway buffer (monitor tier)."""
    from repro.observability.health import HealthMonitor
    from repro.observability.monitor import MonitorView, run_monitor

    instruments = dsms.observability.instruments
    assert instruments is not None
    report = dsms.last_report
    view = MonitorView(
        instruments,
        stages=(lambda: report.stages) if report else None,
        health=HealthMonitor(instruments,
                             tracer=dsms.observability.tracer))
    frames: list[str] = []
    run_monitor(view, frames=1, interval=0, clear=False,
                write=frames.append)


# -- standalone batched-vs-unbatched measurement -----------------------------

def _measure(n_queries: int, tuples_per_sp: int, n_tuples: int,
             batching: bool, repeats: int = 3, *,
             columnar: bool = False, tier: str = "off") -> dict:
    """Best-of-``repeats`` element throughput for one configuration.

    ``columnar`` opts the segment-batched engine into the fused
    columnar tier (``batching`` must be true for it to engage); the
    plain ``batched`` axis passes ``columnar=False`` explicitly since
    the engine enables the tier by default.
    """
    import time

    elements = list(punctuated_stream(
        n_tuples, tuples_per_sp=tuples_per_sp, policy_size=3,
        accessible_fraction=0.6, seed=61))
    dsms = build_dsms(n_queries, elements,
                      observability=_make_observability(tier))
    best = float("inf")
    elements_in = 0
    for _ in range(repeats):
        start = time.perf_counter()
        dsms.run(batching=batching, columnar=columnar)
        if tier == "monitor":
            _render_monitor_frame(dsms)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        elements_in = dsms.last_report.elements_in
    return {
        "elements_in": elements_in,
        "best_seconds": round(best, 6),
        "elements_per_second": round(elements_in / best, 1),
    }


def _measure_tiers(n_queries: int, tuples_per_sp: int, n_tuples: int,
                   tiers, *, inner: int = 4, rounds: int = 10) -> dict:
    """Interleaved amortized CPU-time best-of for observability tiers.

    Single-run wall-clock timing cannot resolve few-percent overheads
    on a shared box: scheduler noise alone moves ~6ms runs by ±20%.
    Each sample therefore times ``inner`` back-to-back runs on the
    process CPU clock (``time.process_time`` — immune to sleeps and
    other tenants) and takes the per-run mean; tiers are interleaved
    every round so they sample the same thermal/load windows, and the
    minimum over rounds estimates the noise-free cost.
    """
    import time

    elements = list(punctuated_stream(
        n_tuples, tuples_per_sp=tuples_per_sp, policy_size=3,
        accessible_fraction=0.6, seed=61))
    engines = {tier: build_dsms(n_queries, elements,
                                observability=_make_observability(tier))
               for tier in tiers}
    for dsms in engines.values():
        dsms.run(batching=True)  # warm caches and plan compilation
    best = {tier: float("inf") for tier in tiers}
    elements_in = {tier: 0 for tier in tiers}
    for _ in range(rounds):
        for tier, dsms in engines.items():
            start = time.process_time()
            for _ in range(inner):
                dsms.run(batching=True)
                if tier == "monitor":
                    _render_monitor_frame(dsms)
            best[tier] = min(best[tier],
                             (time.process_time() - start) / inner)
            elements_in[tier] = dsms.last_report.elements_in
    out = {
        tier: {
            "elements_in": elements_in[tier],
            "best_cpu_seconds": round(best[tier], 6),
            "elements_per_second": round(elements_in[tier] / best[tier], 1),
        }
        for tier in tiers
    }
    base = out["off"]["elements_per_second"]
    for tier in tiers:
        eps = out[tier]["elements_per_second"]
        out[tier]["overhead_vs_off"] = round(
            (base - eps) / base if base else 0.0, 4)
    return out


def _measure_modes(n_queries: int, tuples_per_sp: int, n_tuples: int,
                   repeats: int = 9) -> dict:
    """Interleaved best-of measurement of the three execution modes.

    One repetition runs unbatched, batched and columnar back to back
    and only then repeats — so every mode samples the same thermal /
    load windows.  Sequential per-mode best-of systematically favors
    whichever configuration happened to run while the box was quiet.
    """
    import time

    elements = list(punctuated_stream(
        n_tuples, tuples_per_sp=tuples_per_sp, policy_size=3,
        accessible_fraction=0.6, seed=61))
    engines = {key: build_dsms(n_queries, elements)
               for key in EXECUTION_MODES}
    best = {key: float("inf") for key in EXECUTION_MODES}
    elements_in = {key: 0 for key in EXECUTION_MODES}
    for _ in range(repeats):
        for key, (batching, columnar) in EXECUTION_MODES.items():
            dsms = engines[key]
            start = time.perf_counter()
            dsms.run(batching=batching, columnar=columnar)
            elapsed = time.perf_counter() - start
            best[key] = min(best[key], elapsed)
            elements_in[key] = dsms.last_report.elements_in
    return {
        key: {
            "elements_in": elements_in[key],
            "best_seconds": round(best[key], 6),
            "elements_per_second": round(elements_in[key] / best[key], 1),
        }
        for key in EXECUTION_MODES
    }


#: Shard counts measured on the scaling axis.
SHARD_COUNTS = (1, 2, 4)

#: Estimator note published with the shard-scaling numbers.
SHARD_ESTIMATOR = (
    "projected critical-path throughput: elements_in / (partition + "
    "collect + merge + suffix + max worker CPU), all on process-CPU "
    "clocks, best over interleaved rounds.  Worker CPU times accrue "
    "in parallel on a multi-core host while the coordinator phases "
    "are serial, so the critical path is what a dedicated-core "
    "deployment executes end to end — wall clock on a shared "
    "single-core box cannot show a multi-process speedup.")


def _measure_sharded(n_queries: int, tuples_per_sp: int, n_tuples: int,
                     *, threshold: float = 100.0,
                     shard_counts=SHARD_COUNTS, rounds: int = 4) -> dict:
    """Projected multi-core scaling of the partitioned executor.

    Every ``DSMS.run(shards=N)`` records a ``shard_timing`` breakdown
    on process-CPU clocks; see :data:`SHARD_ESTIMATOR` for how the
    critical path is assembled from it.  Shard counts are interleaved
    every round (same rationale as ``_measure_tiers``) and the best
    round per count is kept.
    """
    elements = list(punctuated_stream(
        n_tuples, tuples_per_sp=tuples_per_sp, policy_size=3,
        accessible_fraction=0.6, seed=61))
    engines = {n: build_dsms(n_queries, elements, threshold=threshold)
               for n in shard_counts}
    best: dict = {n: None for n in shard_counts}
    for _ in range(rounds):
        for n, dsms in engines.items():
            dsms.run(shards=n)
            timing = dsms.last_report.shard_timing
            if (best[n] is None
                    or timing["critical_path_seconds"]
                    < best[n]["critical_path_seconds"]):
                best[n] = dict(timing)
    out: dict = {}
    for n in shard_counts:
        timing = best[n]
        critical = timing["critical_path_seconds"]
        serial = (timing["partition_seconds"]
                  + timing["collect_seconds"]
                  + timing["merge_seconds"]
                  + timing["suffix_cpu_seconds"])
        out[f"shards{n}"] = {
            "elements_in": timing["elements_in"],
            "critical_path_seconds": round(critical, 6),
            "serial_seconds": round(serial, 6),
            "max_worker_cpu_seconds": round(
                timing["max_worker_cpu_seconds"], 6),
            "projected_elements_per_second": round(
                timing["elements_in"] / critical, 1),
        }
    base = out[f"shards{shard_counts[0]}"][
        "projected_elements_per_second"]
    for n in shard_counts:
        eps = out[f"shards{n}"]["projected_elements_per_second"]
        out[f"shards{n}"]["speedup_vs_one_shard"] = round(
            eps / base if base else 0.0, 2)
    return out


def main(out_path: str = "BENCH_throughput.json",
         n_tuples: int = 20_000) -> dict:
    import json

    report: dict = {
        "benchmark": "element_wise_vs_batched_vs_columnar_throughput",
        "workload": {
            "n_tuples": n_tuples,
            "policy_size": 3,
            "accessible_fraction": 0.6,
            "seed": 61,
            "query": "select(x > 100) + per-query security shield",
        },
        "configs": [],
    }
    for tuples_per_sp in (1, 10, 100):
        for n_queries in (1, 4):
            row = {"tuples_per_sp": tuples_per_sp, "n_queries": n_queries}
            # sp-dense rows need more samples: the mode deltas there
            # are a few percent, below a noisy box's run-to-run spread.
            row.update(_measure_modes(
                n_queries, tuples_per_sp, n_tuples,
                repeats=15 if tuples_per_sp == 1 else 9))
            base = row["unbatched"]["elements_per_second"]
            row["speedup"] = round(
                row["batched"]["elements_per_second"] / base, 2)
            row["speedup_columnar"] = round(
                row["columnar"]["elements_per_second"] / base, 2)
            row["columnar_vs_batched"] = round(
                row["columnar"]["elements_per_second"]
                / row["batched"]["elements_per_second"], 2)
            report["configs"].append(row)
            print(f"tuples_per_sp={tuples_per_sp:>3} n_queries={n_queries}: "
                  f"unbatched={row['unbatched']['elements_per_second']:>9,.0f}"
                  f" batched={row['batched']['elements_per_second']:>9,.0f}"
                  f" columnar={row['columnar']['elements_per_second']:>9,.0f}"
                  f" elem/s  speedup={row['speedup']:.2f}x"
                  f" columnar={row['speedup_columnar']:.2f}x")

    # -- observability overhead axis (batched, 4 queries) ------------------
    # Measured at tuples_per_sp=100: the fused high-throughput regime,
    # where per-decision observability cost is most visible relative to
    # the engine's own work.  CPU-time estimator — see _measure_tiers.
    observability: dict = {
        "workload": {"tuples_per_sp": 100, "n_queries": 4,
                     "batching": True,
                     "estimator": "min over interleaved rounds of mean "
                                  "process CPU time per run"},
        "tiers": _measure_tiers(4, 100, n_tuples, OBSERVABILITY_TIERS),
    }
    for tier in OBSERVABILITY_TIERS:
        entry = observability["tiers"][tier]
        print(f"observability={tier:>8}: "
              f"{entry['elements_per_second']:>9,.0f} elem/s  "
              f"overhead={entry['overhead_vs_off']:+.1%}")
    # Worst case for the always-kept denial provenance: sp-dense
    # segments (1 sp / 10 tuples) emit ~10x the drop records per
    # element, so tail-based keep dominates the tracing cost there.
    observability["sp_dense_tracing"] = {
        "workload": {"tuples_per_sp": 10, "n_queries": 4,
                     "batching": True},
        "tiers": _measure_tiers(4, 10, n_tuples, ("off", "tracing")),
    }
    dense = observability["sp_dense_tracing"]["tiers"]["tracing"]
    print(f"sp-dense tracing (1 sp / 10 tuples): "
          f"{dense['elements_per_second']:>9,.0f} elem/s  "
          f"overhead={dense['overhead_vs_off']:+.1%}")
    report["observability"] = observability

    # -- shard-scaling axis (partitioned multi-core executor) --------------
    # Two regimes at tuples_per_sp=100.  The showcase is high query
    # fan-out with a selective predicate — many per-role queries over
    # one stream is where a single process saturates first, and little
    # output ships back.  The delivery-heavy row keeps the canonical
    # select(x > 100): most tuples are delivered to every sink, so
    # serial result collection bounds the speedup — the regime where
    # sharding does NOT pay (see docs/PERFORMANCE.md).
    sharding: dict = {
        "estimator": SHARD_ESTIMATOR,
        "fanout": {
            "workload": {"tuples_per_sp": 100, "n_queries": 32,
                         "n_tuples": 5 * n_tuples,
                         "query": "select(x > 900) + per-query shield"},
            "scaling": _measure_sharded(32, 100, 5 * n_tuples,
                                        threshold=900.0),
        },
        "delivery_heavy": {
            "workload": {"tuples_per_sp": 100, "n_queries": 16,
                         "n_tuples": 2 * n_tuples,
                         "query": "select(x > 100) + per-query shield"},
            "scaling": _measure_sharded(16, 100, 2 * n_tuples,
                                        threshold=100.0),
        },
    }
    for regime in ("fanout", "delivery_heavy"):
        scaling = sharding[regime]["scaling"]
        line = "  ".join(
            f"{n}sh={scaling[f'shards{n}']['projected_elements_per_second']:,.0f}"
            f" ({scaling[f'shards{n}']['speedup_vs_one_shard']:.2f}x)"
            for n in SHARD_COUNTS)
        print(f"sharding {regime:>14}: {line} elem/s projected")
    report["sharding"] = sharding

    # -- UDF effect-analysis axis (proven-pure vs opaque predicate) --------
    # Same workload shape as the canonical select(x > 100), but the
    # predicate is a FuncCondition: the pure arm is in the analyzer's
    # provable fragment (read-set {x}, purity/determinism PROVEN) so
    # the compiler hands it a bulk kernel and the fused tier engages;
    # the opaque arm routes the identical predicate through a mutable
    # dispatch table, its proof stays UNKNOWN, and the columnar tier
    # falls back to the row stage — fail-closed, and this is its price.
    pure_vec, opaque_vec = _udf_vectorization()
    udf_modes = _measure_udf(1, 100, n_tuples)
    udf_axis: dict = {
        "workload": {"tuples_per_sp": 100, "n_queries": 1,
                     "query": "select(udf) + per-query shield"},
        "pure_fully_vectorized": pure_vec,
        "opaque_fully_vectorized": opaque_vec,
        "modes": udf_modes,
        "columnar_vs_batched_pure": round(
            udf_modes["pure_columnar"]["elements_per_second"]
            / udf_modes["pure_batched"]["elements_per_second"], 2),
        "pure_vs_opaque_columnar": round(
            udf_modes["pure_columnar"]["elements_per_second"]
            / udf_modes["opaque_columnar"]["elements_per_second"], 2),
    }
    print(f"udf axis: pure columnar="
          f"{udf_modes['pure_columnar']['elements_per_second']:,.0f} "
          f"opaque columnar="
          f"{udf_modes['opaque_columnar']['elements_per_second']:,.0f}"
          f" elem/s  proven-pure speedup="
          f"{udf_axis['pure_vs_opaque_columnar']:.2f}x")
    report["udf"] = udf_axis
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    return report


#: UDF-axis arms: (callable, execution mode) per id.
_UDF_ARMS = {"pure_columnar": (_udf_pure, True),
             "pure_batched": (_udf_pure, False),
             "opaque_columnar": (_udf_opaque, True)}


def _measure_udf(n_queries: int, tuples_per_sp: int, n_tuples: int,
                 repeats: int = 9) -> dict:
    """Interleaved best-of over the UDF arms.

    ``pure_columnar`` vs ``pure_batched`` isolates what the fused tier
    buys (or costs) a *proven-pure* UDF predicate; ``opaque_columnar``
    shows the fail-closed row-stage fallback an unprovable UDF pays on
    the same tier.  Arms interleave per repetition so they sample the
    same thermal/load windows (see :func:`_measure_modes`).
    """
    import time

    elements = list(punctuated_stream(
        n_tuples, tuples_per_sp=tuples_per_sp, policy_size=3,
        accessible_fraction=0.6, seed=61))
    engines = {key: build_udf_dsms(n_queries, elements, fn,
                                   key.split("_")[0])
               for key, (fn, _) in _UDF_ARMS.items()}
    best = {key: float("inf") for key in _UDF_ARMS}
    elements_in = {key: 0 for key in _UDF_ARMS}
    for _ in range(repeats):
        for key, (_, columnar) in _UDF_ARMS.items():
            dsms = engines[key]
            start = time.perf_counter()
            dsms.run(batching=True, columnar=columnar)
            elapsed = time.perf_counter() - start
            best[key] = min(best[key], elapsed)
            elements_in[key] = dsms.last_report.elements_in
    return {
        key: {
            "elements_in": elements_in[key],
            "best_seconds": round(best[key], 6),
            "elements_per_second": round(elements_in[key] / best[key], 1),
        }
        for key in _UDF_ARMS
    }


def _udf_vectorization() -> "tuple[bool, bool]":
    """(pure arm fully vectorized?, opaque arm fully vectorized?)."""
    from repro.operators.compiler import compile_condition

    pure = compile_condition(FuncCondition(_udf_pure, ("x",), label="pure"))
    opaque = compile_condition(
        FuncCondition(_udf_opaque, ("x",), label="opaque"))
    return pure.fully_vectorized, opaque.fully_vectorized


def udf_smoke(n_tuples: int = 6_000) -> int:
    """CI gate for the UDF effect-analysis axis.

    Structure first: every example plan spec must lint clean under the
    strict policy (any analyzer error fails the gate), the provable
    UDF arm must compile fully vectorized, and the opaque arm must
    *not* (fail-closed).  Then the perf gate: a proven-pure UDF select
    on the fused columnar tier must hold at least 0.95x the plain
    batched engine at ``tuples_per_sp=100`` — the analyzer's proofs
    must buy the fast path, not merely permit it.  Returns a process
    exit code (0 ok, 1 regression).
    """
    from pathlib import Path

    from repro.analysis import lint_file

    plans = sorted((Path(__file__).resolve().parent.parent
                    / "examples" / "plans").glob("*.json"))
    for plan in plans:
        errors = lint_file(str(plan)).errors
        if errors:
            print(f"udf-smoke: {plan.name} fails strict lint:")
            for diagnostic in errors:
                print(f"  {diagnostic}")
            return 1
    print(f"udf-smoke: {len(plans)} example plan(s) lint clean")

    pure_vec, opaque_vec = _udf_vectorization()
    if not pure_vec:
        print("UDF REGRESSION: proven-pure UDF predicate no longer "
              "compiles fully vectorized")
        return 1
    if opaque_vec:
        print("UDF SOUNDNESS REGRESSION: opaque UDF predicate compiled "
              "to a bulk kernel without a purity proof")
        return 1
    print("udf-smoke: pure arm vectorized, opaque arm row-stage (ok)")

    modes = _measure_udf(1, 100, n_tuples, repeats=7)
    p_eps = modes["pure_columnar"]["elements_per_second"]
    b_eps = modes["pure_batched"]["elements_per_second"]
    o_eps = modes["opaque_columnar"]["elements_per_second"]
    ratio = p_eps / b_eps if b_eps else 0.0
    print(f"udf-smoke tuples_per_sp=100: pure columnar={p_eps:,.0f} "
          f"pure batched={b_eps:,.0f} opaque columnar={o_eps:,.0f} "
          f"elem/s  ratio={ratio:.2f}x")
    if ratio < 0.95:
        print("UDF PERF REGRESSION: proven-pure UDF select slower on "
              "the fused columnar tier than plain batched")
        return 1
    print("udf-smoke OK")
    return 0


def perf_smoke(n_tuples: int = 6_000) -> int:
    """CI regression gate for the columnar tier (reduced workload).

    At ``tuples_per_sp=100`` — long segment runs, the regime the fused
    kernels exist for — columnar throughput must be at least the plain
    batched engine's.  Returns a process exit code (0 ok, 1 regression)
    so CI can run ``--perf-smoke`` directly.
    """
    modes = _measure_modes(1, 100, n_tuples, repeats=7)
    b_eps = modes["batched"]["elements_per_second"]
    c_eps = modes["columnar"]["elements_per_second"]
    ratio = c_eps / b_eps if b_eps else 0.0
    print(f"perf-smoke tuples_per_sp=100: batched={b_eps:,.0f} "
          f"columnar={c_eps:,.0f} elem/s  ratio={ratio:.2f}x")
    if c_eps < b_eps:
        print("PERF REGRESSION: columnar tier slower than plain "
              "segment-batched execution")
        return 1
    # sp-dense floor: at tuples_per_sp=1 every segment is below
    # MIN_FUSED_ROWS, so the fused tier must delegate to the native
    # batch path instead of materializing one-row ColumnBatches.  A
    # small noise allowance, but the historical soft regression
    # (0.97x from per-segment columnar materialization) must not come
    # back.
    sparse = _measure_modes(1, 1, n_tuples, repeats=9)
    s_ratio = (sparse["columnar"]["elements_per_second"]
               / sparse["batched"]["elements_per_second"])
    print(f"perf-smoke tuples_per_sp=1:   "
          f"batched={sparse['batched']['elements_per_second']:,.0f} "
          f"columnar={sparse['columnar']['elements_per_second']:,.0f}"
          f" elem/s  ratio={s_ratio:.2f}x")
    if s_ratio < 0.95:
        print("PERF REGRESSION: columnar tier pays a per-segment "
              "materialization tax on sp-dense streams")
        return 1
    print("perf-smoke OK")
    return 0


def shard_smoke(n_tuples: int = 100_000,
                min_speedup: float = 2.5) -> int:
    """CI gate on the shard-scaling axis.

    Four workers must project at least ``min_speedup`` times one
    shard's throughput on the fan-out workload at ``tuples_per_sp=100``
    (critical-path estimator — see :data:`SHARD_ESTIMATOR`; the
    projection uses per-process CPU clocks, so it is stable on
    oversubscribed CI boxes).  Returns a process exit code.
    """
    scaling = _measure_sharded(32, 100, n_tuples, threshold=900.0,
                               shard_counts=(1, 4), rounds=3)
    speedup = scaling["shards4"]["speedup_vs_one_shard"]
    one = scaling["shards1"]["projected_elements_per_second"]
    four = scaling["shards4"]["projected_elements_per_second"]
    print(f"shard-smoke tuples_per_sp=100 n_queries=32: "
          f"1 shard={one:,.0f}  4 shards={four:,.0f} elem/s projected"
          f"  speedup={speedup:.2f}x (gate {min_speedup:.1f}x)")
    if speedup < min_speedup:
        print("SHARD SCALING REGRESSION: 4 workers below the "
              f"{min_speedup:.1f}x projected-speedup gate")
        return 1
    print("shard-smoke OK")
    return 0


def obs_smoke(n_tuples: int = 6_000, threshold: float = 0.20) -> int:
    """CI gate on causal-tracing overhead (reduced workload).

    Interleaved amortized CPU-time comparison (see ``_measure_tiers``)
    of the ``off`` and ``tracing`` observability tiers at
    ``tuples_per_sp=100`` — the fused high-throughput regime.  The
    default head-sampled tracer must cost less than ``threshold`` of
    untraced throughput — the paper-facing budget is 15%; the gate
    allows 20% for noisy CI boxes.  Returns a process exit code
    (0 ok, 1 over budget).
    """
    tiers = _measure_tiers(4, 100, n_tuples, ("off", "tracing"),
                           inner=8, rounds=8)
    off_eps = tiers["off"]["elements_per_second"]
    traced_eps = tiers["tracing"]["elements_per_second"]
    overhead = tiers["tracing"]["overhead_vs_off"]
    print(f"obs-smoke tuples_per_sp=100: off={off_eps:,.0f} "
          f"tracing={traced_eps:,.0f} elem/s  overhead={overhead:+.1%} "
          f"(budget {threshold:.0%})")
    if overhead > threshold:
        print("OBSERVABILITY REGRESSION: sampled causal tracing over "
              "its overhead budget")
        return 1
    print("obs-smoke OK")
    return 0


if __name__ == "__main__":
    import sys

    if "--perf-smoke" in sys.argv:
        raise SystemExit(perf_smoke())
    if "--obs-smoke" in sys.argv:
        raise SystemExit(obs_smoke())
    if "--shard-smoke" in sys.argv:
        raise SystemExit(shard_smoke())
    if "--udf-smoke" in sys.argv:
        raise SystemExit(udf_smoke())
    main()
