"""Engine throughput: end-to-end DSMS execution at growing fan-out.

Measures whole-engine element throughput (sources → analyzer → shared
plan → delivery) as the number of concurrently registered queries
grows, and compares the three optimization modes (as-registered,
per-query optimized, workload-optimized).
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import ScanExpr
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.operators.conditions import Comparison
from repro.workloads.synthetic import (SYNTH_SCHEMA, punctuated_stream,
                                       role_names)

QUERY_COUNTS = (1, 4, 16)
MODES = {"plain": OptimizeLevel.NONE, "optimized": OptimizeLevel.PER_QUERY,
         "workload": OptimizeLevel.WORKLOAD}


def build_dsms(n_queries: int, elements) -> DSMS:
    dsms = DSMS()
    dsms.register_stream(SYNTH_SCHEMA, elements)
    base = ScanExpr("synthetic").select(Comparison("x", ">", 100.0))
    for index, role in enumerate(role_names(n_queries, prefix="qr")):
        dsms.register_query(f"q{index}", base, roles={role, "q_role"})
    return dsms


@pytest.fixture(scope="module")
def elements(bench_tuples):
    return list(punctuated_stream(
        bench_tuples, tuples_per_sp=10, policy_size=3,
        accessible_fraction=0.6, seed=61))


@pytest.mark.parametrize("n_queries", QUERY_COUNTS)
@pytest.mark.parametrize("mode", sorted(MODES))
def test_engine_throughput(benchmark, elements, mode, n_queries):
    optimize = MODES[mode]
    dsms = build_dsms(n_queries, elements)

    def once():
        return dsms.run(optimize=optimize)

    results = benchmark(once)
    total_out = sum(len(r.tuples) for r in results.values())
    benchmark.extra_info["n_queries"] = n_queries
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["tuples_delivered"] = total_out
    benchmark.extra_info["elements_in"] = (
        dsms.last_report.elements_in if dsms.last_report else 0)
