"""Figure 7c — memory consumption vs policy size |R|.

Memory is not a timing quantity, so this bench reports the measured
bytes per mechanism/|R| point through ``extra_info`` (and spends its
timing budget on the measurement pass itself).  The paper's shape:
tuple-embedded grows fastest; the sp model is smallest for small
policies; the persistent table overtakes the sp model once |R| > ~25.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig7 import (PAPER_POLICY_SIZES,
                                    _large_policy_stream,
                                    run_sp_mechanism, run_store_and_probe,
                                    run_tuple_embedded)
from repro.workloads.synthetic import QUERY_ROLE

MECHANISMS = {
    "store_and_probe": run_store_and_probe,
    "tuple_embedded": run_tuple_embedded,
    "security_punctuations": run_sp_mechanism,
}


@pytest.fixture(scope="module")
def streams(bench_tuples):
    n = max(bench_tuples // 2, 500)
    return {
        size: _large_policy_stream(n, size, tuples_per_sp=10, seed=11)
        for size in PAPER_POLICY_SIZES
    }


@pytest.mark.parametrize("policy_size", PAPER_POLICY_SIZES)
@pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
def test_fig7c(benchmark, streams, mechanism, policy_size):
    elements = streams[policy_size]
    run = MECHANISMS[mechanism]
    result = benchmark.pedantic(
        lambda: run(elements, [QUERY_ROLE], buffer_size=250),
        rounds=1, iterations=1)
    benchmark.extra_info["policy_size"] = policy_size
    benchmark.extra_info["memory_bytes"] = result.memory_bytes
    benchmark.extra_info["memory_mb"] = round(result.memory_mb, 4)
