#!/usr/bin/env python3
"""Repo-specific AST lint rules (stdlib only; run by CI and check.sh).

Rules
-----

``RL001`` — no ``id()``-derived tuple ids.  ``id()`` values are
    process-specific, so a tid derived from one breaks replay and
    cross-run diffing.  Flagged: ``id(...)`` assigned to a name
    containing ``tid``, or passed as an argument to a ``DataTuple``
    call.  Other uses (hash-consing keys, explain annotations) are
    legitimate and stay allowed.

``RL002`` — determinism in ``repro.verify``.  The differential
    harness must reproduce byte-identical scenarios from a seed:
    wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
    ``datetime.now``/``utcnow``) and unseeded randomness (module-level
    ``random.*`` draws, ``random.Random()`` without a seed) are
    forbidden under ``src/repro/verify``.

``RL003`` — operators that count drops must audit them.  Any class
    under ``src/repro/operators`` that increments ``tuples_blocked``
    must also reference the ``audit`` hook somewhere in its body, so
    every denial can be recorded in the security audit trail.

``RL004`` — operators that count drops must attach provenance.  Any
    class under ``src/repro/operators`` that increments
    ``tuples_blocked`` must also reference the ``_tracer`` hook, so
    every denial is reconstructable through ``repro why`` (causal
    security provenance, the observability counterpart of RL003).
    Additionally, operator files must not hand-build trace events:
    raw ``SpanEvent(...)`` construction and flat ``.span(...)`` calls
    bypass head sampling, the tail-based keep override and causal ids
    — provenance must flow through the ``Tracer`` API
    (``record``/``decision``/``op_span``).

``RL005`` — UDF conditions must declare their read-sets.  Any
    ``FuncCondition(...)`` construction under ``src/repro`` or
    ``examples/`` must pass an explicit ``attributes=`` (second
    positional or keyword) argument: an empty declaration makes the
    optimizer, the predicate compiler and SEC002's pruning analysis
    reason as if the predicate read nothing.  Use
    ``FuncCondition.wrap(fn)`` to declare the statically inferred
    read-set automatically.

Output is ``path:line: RLxxx message`` per finding; exit status 1 when
anything is flagged.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Unseeded module-level draws forbidden in repro.verify (RL002).
RANDOM_MODULE_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate",
    "seed", "getrandbits", "triangular",
})

#: Wall-clock reads forbidden in repro.verify (RL002).
CLOCK_CALLS = frozenset({
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "time_ns"), ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
})


class Finding:
    """One lint violation."""

    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        try:
            shown = self.path.relative_to(REPO)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: {self.rule} {self.message}"


def _is_id_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id")


def _target_names(target: ast.AST) -> "list[str]":
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        return [target.attr]
    if isinstance(target, (ast.Tuple, ast.List)):
        names = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def check_rl001(path: Path, tree: ast.AST) -> "list[Finding]":
    """``id()`` flowing into tuple ids (names with ``tid``/DataTuple)."""
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            value = node.value
            if value is None or not any(
                    _is_id_call(sub) for sub in ast.walk(value)):
                continue
            for name in (n for t in targets for n in _target_names(t)):
                if "tid" in name.lower():
                    findings.append(Finding(
                        path, node.lineno, "RL001",
                        f"id()-derived value assigned to {name!r}; "
                        "tuple ids must be stable across processes"))
        elif isinstance(node, ast.Call):
            callee = node.func
            callee_name = (callee.id if isinstance(callee, ast.Name)
                           else callee.attr
                           if isinstance(callee, ast.Attribute) else "")
            if callee_name != "DataTuple":
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if any(_is_id_call(sub) for sub in ast.walk(arg)):
                    findings.append(Finding(
                        path, node.lineno, "RL001",
                        "id() passed into a DataTuple; tuple ids must "
                        "be stable across processes"))
    return findings


def check_rl002(path: Path, tree: ast.AST) -> "list[Finding]":
    """Nondeterminism sources inside the repro.verify package."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else None
        if (base_name, func.attr) in CLOCK_CALLS:
            findings.append(Finding(
                path, node.lineno, "RL002",
                f"wall-clock read {base_name}.{func.attr}() in "
                "repro.verify; scenarios must be seed-deterministic"))
        elif base_name == "random" and func.attr in RANDOM_MODULE_FUNCS:
            findings.append(Finding(
                path, node.lineno, "RL002",
                f"unseeded module-level random.{func.attr}() in "
                "repro.verify; use a seeded random.Random instance"))
        elif (func.attr == "Random" and base_name == "random"
                and not node.args and not node.keywords):
            findings.append(Finding(
                path, node.lineno, "RL002",
                "random.Random() without a seed in repro.verify"))
    return findings


def check_rl003(path: Path, tree: ast.AST) -> "list[Finding]":
    """Drop-counting operator classes must reference the audit hook."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        increments = [
            sub for sub in ast.walk(node)
            if isinstance(sub, ast.AugAssign)
            and isinstance(sub.target, ast.Attribute)
            and sub.target.attr == "tuples_blocked"
        ]
        if not increments:
            continue
        audits = any(
            isinstance(sub, ast.Attribute) and "audit" in sub.attr
            for sub in ast.walk(node))
        if not audits:
            findings.append(Finding(
                path, increments[0].lineno, "RL003",
                f"class {node.name!r} increments tuples_blocked but "
                "never references the audit hook; denied tuples must "
                "be recordable in the audit trail"))
    return findings


def check_rl004(path: Path, tree: ast.AST) -> "list[Finding]":
    """Drop-counting operators must be provenance-traceable."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        increments = [
            sub for sub in ast.walk(node)
            if isinstance(sub, ast.AugAssign)
            and isinstance(sub.target, ast.Attribute)
            and sub.target.attr == "tuples_blocked"
        ]
        if not increments:
            continue
        traced = any(
            isinstance(sub, ast.Attribute) and sub.attr == "_tracer"
            for sub in ast.walk(node))
        if not traced:
            findings.append(Finding(
                path, increments[0].lineno, "RL004",
                f"class {node.name!r} increments tuples_blocked but "
                "never references the _tracer hook; denials must be "
                "reconstructable through causal provenance"))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "SpanEvent":
            findings.append(Finding(
                path, node.lineno, "RL004",
                "raw SpanEvent(...) built in an operator; emit through "
                "the Tracer API so sampling and causal ids apply"))
        elif isinstance(func, ast.Attribute) and func.attr == "span":
            findings.append(Finding(
                path, node.lineno, "RL004",
                "flat .span(...) call in an operator; use the Tracer "
                "provenance API (record/decision/op_span) so security "
                "events keep their causal context"))
    return findings


def check_rl005(path: Path, tree: ast.AST) -> "list[Finding]":
    """``FuncCondition(...)`` built without an attributes declaration."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = (func.id if isinstance(func, ast.Name)
                  else func.attr if isinstance(func, ast.Attribute)
                  else "")
        if callee != "FuncCondition":
            continue
        has_positional = len(node.args) >= 2
        has_keyword = any(kw.arg == "attributes" for kw in node.keywords)
        if not has_positional and not has_keyword:
            findings.append(Finding(
                path, node.lineno, "RL005",
                "FuncCondition built without an attributes "
                "declaration; the optimizer and compiler reason from "
                "Condition.attributes(), so an empty declaration is an "
                "unsound input (use attributes=(...) or "
                "FuncCondition.wrap)"))
    return findings


def lint_file(path: Path) -> "list[Finding]":
    """All rule findings for one source file."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "RL000",
                        f"file does not parse: {exc.msg}")]
    findings = check_rl001(path, tree)
    if (SRC / "verify") in path.parents:
        findings.extend(check_rl002(path, tree))
    if (SRC / "operators") in path.parents:
        findings.extend(check_rl003(path, tree))
        findings.extend(check_rl004(path, tree))
    if SRC in path.parents or (REPO / "examples") in path.parents:
        findings.extend(check_rl005(path, tree))
    return findings


def main(argv: "list[str] | None" = None) -> int:
    """Lint the given files (default: all of ``src/repro``)."""
    argv = sys.argv[1:] if argv is None else argv
    paths = ([Path(arg).resolve() for arg in argv] if argv
             else sorted(SRC.rglob("*.py"))
             + sorted((REPO / "examples").rglob("*.py")))
    findings: "list[Finding]" = []
    for path in paths:
        findings.extend(lint_file(path))
    for finding in findings:
        print(finding)
    checked = len(paths)
    print(f"lint_rules: {checked} file(s), {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
