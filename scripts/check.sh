#!/usr/bin/env bash
# Local quality gate: lint (when ruff is available) + tier-1 tests.
#
# Usage: scripts/check.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples
else
    echo "== ruff == (not installed; skipping lint)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy
else
    echo "== mypy == (not installed; skipping type check)"
fi

echo "== repo lint rules =="
python scripts/lint_rules.py

echo "== plan lint (static security analysis) =="
PYTHONPATH=src python -m repro lint examples/plans/*.json \
    tests/verify/cases/*.json

echo "== pytest (tier 1) =="
PYTHONPATH=src python -m pytest -x -q "$@"
